//! The virtual-time span tracer: structured `span_enter`/`span_exit`/
//! `instant` events stamped with simulated time.
//!
//! # Model
//!
//! Events land on **lanes**. A lane is one row of the flamegraph:
//! one per client (`LaneKind::Client`, tid = client id), one per disk
//! (`LaneKind::Disk`), and engine lanes for the daemons (flush, cache,
//! layout). Spans opened through [`span_enter`] resolve their lane via
//! a per-task routing table ([`set_task_lane`]): a client handle binds
//! its task to its client lane at op entry, so everything the op does
//! on that task — lock waits, cache loads, flush stalls — nests under
//! the op span in the client's lane.
//!
//! # Zero cost when disabled
//!
//! The tracer is installed into a thread-local slot ([`install`]); all
//! entry points first read a thread-local `bool` and return
//! immediately when no tracer is installed. Instrumentation sites are
//! expected to gate any argument construction behind [`enabled`].
//!
//! # Determinism
//!
//! Timestamps are caller-supplied *simulated* nanoseconds and event
//! order is the deterministic executor's, so two seeded runs produce
//! byte-identical exports ([`crate::chrome::to_chrome_json`]). Tracing
//! records but never sleeps, yields or allocates sim resources, so
//! enabling it cannot perturb a schedule: the platter image of a
//! traced run is byte-identical to the untraced run's.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

/// Which process row a lane renders under in the Chrome trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LaneKind {
    /// One lane per client (pid 1).
    Client,
    /// One lane per disk (pid 2).
    Disk,
    /// Engine daemons and shared phases (pid 3).
    Engine,
}

impl LaneKind {
    /// The Chrome `pid` this kind renders under.
    pub fn pid(self) -> u32 {
        match self {
            LaneKind::Client => 1,
            LaneKind::Disk => 2,
            LaneKind::Engine => 3,
        }
    }

    /// The process label for the `process_name` metadata event.
    pub fn process_label(self) -> &'static str {
        match self {
            LaneKind::Client => "clients",
            LaneKind::Disk => "disks",
            LaneKind::Engine => "engine",
        }
    }
}

/// Index of a lane inside a tracer.
pub type LaneId = u32;

/// Handle to an open span; returned by [`span_enter`] and consumed by
/// [`span_exit`]. [`SpanToken::NONE`] is the disabled-tracer sentinel
/// and makes every operation on it a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanToken(u32);

impl SpanToken {
    /// The no-op token handed out while tracing is disabled.
    pub const NONE: SpanToken = SpanToken(u32::MAX);

    /// True for the disabled sentinel.
    pub fn is_none(self) -> bool {
        self.0 == u32::MAX
    }
}

/// A typed field value attached to a span or instant.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// String (allocates; gate behind [`enabled`]).
    Str(String),
    /// Boolean.
    Bool(bool),
}

pub(crate) struct Lane {
    pub kind: LaneKind,
    pub tid: u32,
    pub name: String,
}

pub(crate) enum Event {
    Complete {
        lane: LaneId,
        name: &'static str,
        start_ns: u64,
        dur_ns: u64,
        fields: Vec<(&'static str, Field)>,
    },
    Instant {
        lane: LaneId,
        name: &'static str,
        ts_ns: u64,
        fields: Vec<(&'static str, Field)>,
    },
}

impl Event {
    pub(crate) fn start_ns(&self) -> u64 {
        match self {
            Event::Complete { start_ns, .. } => *start_ns,
            Event::Instant { ts_ns, .. } => *ts_ns,
        }
    }

    pub(crate) fn lane(&self) -> LaneId {
        match self {
            Event::Complete { lane, .. } | Event::Instant { lane, .. } => *lane,
        }
    }
}

struct OpenSpan {
    lane: LaneId,
    name: &'static str,
    start_ns: u64,
    fields: Vec<(&'static str, Field)>,
}

#[derive(Default)]
pub(crate) struct TracerInner {
    pub(crate) lanes: Vec<Lane>,
    /// (kind, tid) → lane, for client lanes keyed by id.
    by_tid: BTreeMap<(u8, u32), LaneId>,
    /// Named disk/engine lanes, interned in registration order.
    by_name: BTreeMap<(u8, String), LaneId>,
    next_tid: BTreeMap<u8, u32>,
    open: Vec<Option<OpenSpan>>,
    free: Vec<u32>,
    pub(crate) events: Vec<Event>,
    task_lanes: BTreeMap<u64, LaneId>,
}

fn kind_key(kind: LaneKind) -> u8 {
    match kind {
        LaneKind::Client => 0,
        LaneKind::Disk => 1,
        LaneKind::Engine => 2,
    }
}

impl TracerInner {
    fn lane_for_client(&mut self, client: u32) -> LaneId {
        let key = (kind_key(LaneKind::Client), client);
        if let Some(id) = self.by_tid.get(&key) {
            return *id;
        }
        let id = self.lanes.len() as LaneId;
        self.lanes.push(Lane {
            kind: LaneKind::Client,
            tid: client,
            name: format!("client {client}"),
        });
        self.by_tid.insert(key, id);
        id
    }

    fn lane_named(&mut self, kind: LaneKind, name: &str) -> LaneId {
        let key = (kind_key(kind), name.to_string());
        if let Some(id) = self.by_name.get(&key) {
            return *id;
        }
        let tid_slot = self.next_tid.entry(kind_key(kind)).or_insert(0);
        let tid = *tid_slot;
        *tid_slot += 1;
        let id = self.lanes.len() as LaneId;
        self.lanes.push(Lane { kind, tid, name: name.to_string() });
        self.by_name.insert(key, id);
        id
    }

    fn enter(&mut self, lane: LaneId, name: &'static str, now_ns: u64) -> SpanToken {
        let span = OpenSpan { lane, name, start_ns: now_ns, fields: Vec::new() };
        if let Some(slot) = self.free.pop() {
            self.open[slot as usize] = Some(span);
            SpanToken(slot)
        } else {
            self.open.push(Some(span));
            SpanToken((self.open.len() - 1) as u32)
        }
    }

    fn exit(&mut self, tok: SpanToken, now_ns: u64) {
        let Some(slot) = self.open.get_mut(tok.0 as usize) else { return };
        let Some(span) = slot.take() else { return };
        self.free.push(tok.0);
        self.events.push(Event::Complete {
            lane: span.lane,
            name: span.name,
            start_ns: span.start_ns,
            dur_ns: now_ns.saturating_sub(span.start_ns),
            fields: span.fields,
        });
    }
}

/// A shareable tracer; clones reference the same event buffer.
#[derive(Clone, Default)]
pub struct Tracer {
    pub(crate) inner: Rc<RefCell<TracerInner>>,
}

impl Tracer {
    /// Creates an empty tracer.
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// Number of events recorded so far (open spans excluded).
    pub fn event_count(&self) -> usize {
        self.inner.borrow().events.len()
    }
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static CURRENT: RefCell<Option<Tracer>> = const { RefCell::new(None) };
}

/// Restores the previously installed tracer (if any) on drop.
pub struct InstallGuard {
    prev: Option<Tracer>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        ENABLED.with(|e| e.set(prev.is_some()));
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// Installs `t` as the thread's active tracer until the guard drops.
pub fn install(t: &Tracer) -> InstallGuard {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(t.clone()));
    ENABLED.with(|e| e.set(true));
    InstallGuard { prev }
}

/// True when a tracer is installed. Instrumentation sites should check
/// this before building field values or formatting names.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

fn with<R>(f: impl FnOnce(&Tracer) -> R) -> Option<R> {
    if !enabled() {
        return None;
    }
    CURRENT.with(|c| c.borrow().as_ref().map(f))
}

/// Interns (or retrieves) the lane for `client`.
pub fn client_lane(client: u32) -> LaneId {
    with(|t| t.inner.borrow_mut().lane_for_client(client)).unwrap_or(0)
}

/// Interns (or retrieves) a disk lane named `name`.
pub fn disk_lane(name: &str) -> LaneId {
    with(|t| t.inner.borrow_mut().lane_named(LaneKind::Disk, name)).unwrap_or(0)
}

/// Interns (or retrieves) an engine lane named `name`.
pub fn engine_lane(name: &str) -> LaneId {
    with(|t| t.inner.borrow_mut().lane_named(LaneKind::Engine, name)).unwrap_or(0)
}

/// Routes subsequent [`span_enter`]/[`instant`] calls made by task
/// `task` to `lane` (the client handle binds its task at op entry).
pub fn set_task_lane(task: u64, lane: LaneId) {
    with(|t| {
        t.inner.borrow_mut().task_lanes.insert(task, lane);
    });
}

fn task_lane(inner: &mut TracerInner, task: u64) -> LaneId {
    if let Some(l) = inner.task_lanes.get(&task) {
        *l
    } else {
        inner.lane_named(LaneKind::Engine, "engine")
    }
}

/// Opens a span on the lane routed for `task` (see [`set_task_lane`]).
pub fn span_enter(task: u64, name: &'static str, now_ns: u64) -> SpanToken {
    with(|t| {
        let mut inner = t.inner.borrow_mut();
        let lane = task_lane(&mut inner, task);
        inner.enter(lane, name, now_ns)
    })
    .unwrap_or(SpanToken::NONE)
}

/// Opens a span on an explicit lane.
pub fn span_enter_on(lane: LaneId, name: &'static str, now_ns: u64) -> SpanToken {
    with(|t| t.inner.borrow_mut().enter(lane, name, now_ns)).unwrap_or(SpanToken::NONE)
}

/// Attaches a typed field to an open span.
pub fn span_field(tok: SpanToken, key: &'static str, value: Field) {
    if tok.is_none() {
        return;
    }
    with(|t| {
        let mut inner = t.inner.borrow_mut();
        if let Some(Some(span)) = inner.open.get_mut(tok.0 as usize) {
            span.fields.push((key, value));
        }
    });
}

/// Closes a span, emitting a complete event spanning enter → now.
pub fn span_exit(tok: SpanToken, now_ns: u64) {
    if tok.is_none() {
        return;
    }
    with(|t| t.inner.borrow_mut().exit(tok, now_ns));
}

/// Emits an instant event on the lane routed for `task`.
pub fn instant(task: u64, name: &'static str, now_ns: u64, fields: Vec<(&'static str, Field)>) {
    with(|t| {
        let mut inner = t.inner.borrow_mut();
        let lane = task_lane(&mut inner, task);
        inner.events.push(Event::Instant { lane, name, ts_ns: now_ns, fields });
    });
}

/// Emits an instant event on an explicit lane.
pub fn instant_on(
    lane: LaneId,
    name: &'static str,
    now_ns: u64,
    fields: Vec<(&'static str, Field)>,
) {
    with(|t| {
        t.inner.borrow_mut().events.push(Event::Instant { lane, name, ts_ns: now_ns, fields });
    });
}

/// Emits a complete event with explicit bounds (for spans measured
/// elsewhere — e.g. device service intervals recorded by the driver).
pub fn complete_on(
    lane: LaneId,
    name: &'static str,
    start_ns: u64,
    end_ns: u64,
    fields: Vec<(&'static str, Field)>,
) {
    with(|t| {
        t.inner.borrow_mut().events.push(Event::Complete {
            lane,
            name,
            start_ns,
            dur_ns: end_ns.saturating_sub(start_ns),
            fields,
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        assert!(!enabled());
        let tok = span_enter(0, "op:test", 100);
        assert!(tok.is_none());
        span_exit(tok, 200);
        instant(0, "nothing", 150, vec![]);
        assert_eq!(client_lane(3), 0);
    }

    #[test]
    fn spans_and_instants_record_on_lanes() {
        let t = Tracer::new();
        let _g = install(&t);
        assert!(enabled());
        let lane = client_lane(7);
        set_task_lane(42, lane);
        let tok = span_enter(42, "op:read", 1_000);
        span_field(tok, "ino", Field::U64(5));
        instant(42, "cache:hit", 1_500, vec![]);
        span_exit(tok, 2_000);
        drop(_g);
        assert!(!enabled());
        let inner = t.inner.borrow();
        assert_eq!(inner.events.len(), 2);
        assert_eq!(inner.lanes.len(), 1);
        assert_eq!(inner.lanes[0].tid, 7);
        match &inner.events[1] {
            Event::Complete { name, start_ns, dur_ns, fields, .. } => {
                assert_eq!(*name, "op:read");
                assert_eq!(*start_ns, 1_000);
                assert_eq!(*dur_ns, 1_000);
                assert_eq!(fields.len(), 1);
            }
            _ => panic!("expected complete event last"),
        }
    }

    #[test]
    fn install_guard_restores_previous_tracer() {
        let a = Tracer::new();
        let b = Tracer::new();
        let _ga = install(&a);
        {
            let _gb = install(&b);
            span_exit(span_enter_on(engine_lane("x"), "inner", 0), 10);
        }
        span_exit(span_enter_on(engine_lane("x"), "outer", 0), 10);
        assert_eq!(b.event_count(), 1);
        assert_eq!(a.event_count(), 1);
    }

    #[test]
    fn unrouted_tasks_fall_back_to_the_engine_lane() {
        let t = Tracer::new();
        let _g = install(&t);
        let tok = span_enter(999, "daemon:tick", 0);
        span_exit(tok, 5);
        let inner = t.inner.borrow();
        assert_eq!(inner.lanes.len(), 1);
        assert_eq!(inner.lanes[0].kind, LaneKind::Engine);
        assert_eq!(inner.lanes[0].name, "engine");
    }
}
