//! Observability for the cut-and-paste stack: the shared histogram
//! type, a unified metrics registry, and a virtual-time span tracer.
//!
//! The paper's methodology is *measurement* — cut a component out of
//! the simulator, paste it into the file system, compare the figures —
//! so the measurement machinery itself is a first-class component.
//! This crate sits below `cnp-sim` (it depends on nothing) and offers:
//!
//! * [`Histogram`] — the fixed-bucket histogram every layer shares
//!   (replay latencies, device service times, per-client latencies);
//! * [`MetricsRegistry`] / [`MetricsSnapshot`] — counters, gauges and
//!   histograms registered by name, snapshotted into one sorted-key
//!   structure with deterministic serialization;
//! * [`trace`] — `span_enter`/`span_exit`/`instant` structured events
//!   stamped with *simulated* time (the caller supplies nanoseconds),
//!   exported as Chrome `trace_event` JSON. Because timestamps are
//!   virtual and the executor is deterministic, two seeded runs emit
//!   byte-identical trace files — a diff of two traces is a regression
//!   oracle.
//!
//! Timestamps everywhere in this crate are plain `u64` nanoseconds so
//! the crate stays dependency-free; `cnp-sim` layers its `SimTime`
//! sugar on top.

pub mod chrome;
pub mod histogram;
pub mod metrics;
pub mod trace;

pub use histogram::Histogram;
pub use metrics::{Metric, MetricsRegistry, MetricsSnapshot};
