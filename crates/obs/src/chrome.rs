//! Chrome `trace_event` JSON export: the format `chrome://tracing` and
//! Perfetto load as a flamegraph.
//!
//! Spans become `"ph": "X"` complete events, instants become
//! `"ph": "i"`, and every lane gets `process_name`/`thread_name`
//! metadata so the viewer shows one row per client and one per disk.
//! Timestamps are the tracer's virtual nanoseconds rendered as
//! microseconds with fixed three-decimal precision (integer
//! arithmetic), so the emitted bytes are a pure function of the event
//! stream — two seeded runs serialize byte-identically.

use crate::metrics::json_escape;
use crate::trace::{Event, Field, Tracer};

/// Renders `ns` nanoseconds as fixed-point microseconds ("12.345").
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn field_json(f: &Field) -> String {
    match f {
        Field::U64(v) => format!("{v}"),
        Field::I64(v) => format!("{v}"),
        Field::F64(v) => format!("{v:.6}"),
        Field::Str(s) => format!("\"{}\"", json_escape(s)),
        Field::Bool(b) => format!("{b}"),
    }
}

fn args_json(fields: &[(&'static str, Field)]) -> String {
    if fields.is_empty() {
        return "{}".to_string();
    }
    let mut s = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\"{}\":{}", json_escape(k), field_json(v)));
    }
    s.push('}');
    s
}

/// Serializes a tracer's events as a Chrome trace-event JSON array.
///
/// Events are ordered by (start time, lane, recording order) — a
/// stable sort over the deterministic event stream, so identical runs
/// produce identical bytes.
pub fn to_chrome_json(t: &Tracer) -> String {
    let inner = t.inner.borrow();
    let mut lines: Vec<String> = Vec::new();

    // Metadata: one process row per lane kind, one thread row per lane.
    let mut pids: Vec<u32> = inner.lanes.iter().map(|l| l.kind.pid()).collect();
    pids.sort_unstable();
    pids.dedup();
    for pid in &pids {
        let label = inner
            .lanes
            .iter()
            .find(|l| l.kind.pid() == *pid)
            .map(|l| l.kind.process_label())
            .unwrap_or("?");
        lines.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{label}\"}}}}"
        ));
    }
    let mut lane_rows: Vec<(u32, u32, &str)> =
        inner.lanes.iter().map(|l| (l.kind.pid(), l.tid, l.name.as_str())).collect();
    lane_rows.sort_unstable();
    for (pid, tid, name) in lane_rows {
        lines.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(name)
        ));
    }

    // Events, stably ordered.
    let mut order: Vec<usize> = (0..inner.events.len()).collect();
    order.sort_by_key(|&i| (inner.events[i].start_ns(), inner.events[i].lane(), i));
    for i in order {
        let ev = &inner.events[i];
        match ev {
            Event::Complete { lane, name, start_ns, dur_ns, fields } => {
                let l = &inner.lanes[*lane as usize];
                lines.push(format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\
                     \"dur\":{},\"args\":{}}}",
                    json_escape(name),
                    l.kind.pid(),
                    l.tid,
                    us(*start_ns),
                    us(*dur_ns),
                    args_json(fields)
                ));
            }
            Event::Instant { lane, name, ts_ns, fields } => {
                let l = &inner.lanes[*lane as usize];
                lines.push(format!(
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"pid\":{},\"tid\":{},\"ts\":{},\
                     \"s\":\"t\",\"args\":{}}}",
                    json_escape(name),
                    l.kind.pid(),
                    l.tid,
                    us(*ts_ns),
                    args_json(fields)
                ));
            }
        }
    }

    let mut s = String::from("[\n");
    for (i, line) in lines.iter().enumerate() {
        s.push_str(line);
        s.push_str(if i + 1 < lines.len() { ",\n" } else { "\n" });
    }
    s.push_str("]\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{self, Field};

    #[test]
    fn export_is_valid_shape_and_stable() {
        let t = Tracer::new();
        let g = trace::install(&t);
        let lane = trace::client_lane(0);
        let disk = trace::disk_lane("d0");
        trace::set_task_lane(1, lane);
        let tok = trace::span_enter(1, "op:write", 10_500);
        trace::span_field(tok, "bytes", Field::U64(4096));
        trace::complete_on(disk, "io:write", 11_000, 14_250, vec![("lba", Field::U64(64))]);
        trace::instant(1, "cache:miss", 12_000, vec![]);
        trace::span_exit(tok, 20_000);
        drop(g);
        let a = to_chrome_json(&t);
        let b = to_chrome_json(&t);
        assert_eq!(a, b);
        assert!(a.starts_with("[\n"));
        assert!(a.ends_with("]\n"));
        assert!(a.contains("\"ph\":\"M\""));
        assert!(a.contains("\"name\":\"op:write\""));
        assert!(a.contains("\"ts\":10.500"));
        assert!(a.contains("\"dur\":9.500"));
        assert!(a.contains("\"dur\":3.250"));
        assert!(a.contains("\"thread_name\""));
        // No trailing comma before the closing bracket.
        assert!(!a.contains(",\n]"));
    }

    #[test]
    fn events_sort_by_start_time() {
        let t = Tracer::new();
        let g = trace::install(&t);
        let lane = trace::engine_lane("flush");
        trace::complete_on(lane, "late", 5_000, 6_000, vec![]);
        trace::complete_on(lane, "early", 1_000, 2_000, vec![]);
        drop(g);
        let s = to_chrome_json(&t);
        assert!(s.find("early").unwrap() < s.find("late").unwrap());
    }
}
