//! [`FaultyDisk`]: any disk model plus a fault plan, behind the same
//! interfaces as a healthy disk.
//!
//! The wrapper implements [`DiskModel`] by delegation, so anything that
//! consumes a model (timing studies, schedulers, the driver) composes
//! with it unchanged; [`FaultyDisk::spawn`] wires the whole simulated
//! stack — SCSI bus, disk task with the fault plan, scheduled driver —
//! in one call and hands back both ends.

use cnp_disk::{
    spawn_disk, Backend, DiskClient, DiskDriver, DiskGeometry, DiskModel, DiskOpts, DiskPos,
    FaultPlan, MediaAccess, QueueScheduler, ScsiBus, SimBackend,
};
use cnp_sim::{Handle, SimDuration, SimTime};

/// A disk model wrapped with a deterministic fault plan.
pub struct FaultyDisk {
    model: Box<dyn DiskModel>,
    plan: FaultPlan,
    opts: DiskOpts,
}

impl FaultyDisk {
    /// Wraps `model` with `plan` (default disk options).
    pub fn new(model: Box<dyn DiskModel>, plan: FaultPlan) -> Self {
        FaultyDisk { model, plan, opts: DiskOpts::default() }
    }

    /// Overrides the disk options (SCSI id, caches, platter store).
    pub fn with_opts(mut self, opts: DiskOpts) -> Self {
        self.opts = opts;
        self
    }

    /// The fault plan this disk will execute.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Spawns bus + disk task + scheduled driver; returns the driver
    /// (for layouts/engines) and the disk client (for crash capture).
    pub fn spawn(
        self,
        handle: &Handle,
        name: &str,
        sched: Box<dyn QueueScheduler>,
    ) -> (DiskDriver, DiskClient) {
        let bus = ScsiBus::new(handle);
        self.spawn_on_bus(handle, name, bus, sched, 7)
    }

    /// Like [`FaultyDisk::spawn`] but on a shared bus with an explicit
    /// host adapter id (multi-disk topologies).
    pub fn spawn_on_bus(
        self,
        handle: &Handle,
        name: &str,
        bus: ScsiBus,
        sched: Box<dyn QueueScheduler>,
        host_id: u8,
    ) -> (DiskDriver, DiskClient) {
        let disk = spawn_disk(
            handle,
            &format!("disk:{name}"),
            self.model,
            bus.clone(),
            self.opts,
            self.plan,
        );
        let driver = DiskDriver::new(
            handle,
            name,
            Backend::Sim(SimBackend { bus, disk: disk.clone(), host_id }),
            sched,
        );
        (driver, disk)
    }
}

impl DiskModel for FaultyDisk {
    fn geometry(&self) -> &DiskGeometry {
        self.model.geometry()
    }

    fn controller_overhead(&self) -> SimDuration {
        self.model.controller_overhead()
    }

    fn seek_time(&self, from_cyl: u32, to_cyl: u32) -> SimDuration {
        self.model.seek_time(from_cyl, to_cyl)
    }

    fn head_switch_time(&self) -> SimDuration {
        self.model.head_switch_time()
    }

    fn media_access(&self, now: SimTime, pos: DiskPos, lba: u64, sectors: u32) -> MediaAccess {
        self.model.media_access(now, pos, lba, sectors)
    }

    fn media_access_rw(
        &self,
        now: SimTime,
        pos: DiskPos,
        lba: u64,
        sectors: u32,
        write: bool,
    ) -> MediaAccess {
        self.model.media_access_rw(now, pos, lba, sectors, write)
    }

    fn native_depth(&self) -> u32 {
        self.model.native_depth()
    }

    fn channels(&self) -> u32 {
        self.model.channels()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlanBuilder;
    use cnp_disk::{CLook, Hp97560, IoError};
    use cnp_sim::Sim;

    #[test]
    fn model_interface_delegates() {
        let faulty = FaultyDisk::new(Box::new(Hp97560::new()), FaultPlan::default());
        let plain = Hp97560::new();
        assert_eq!(faulty.geometry(), plain.geometry());
        assert_eq!(faulty.controller_overhead(), plain.controller_overhead());
        assert_eq!(faulty.seek_time(0, 100), plain.seek_time(0, 100));
        let a = faulty.media_access(SimTime::ZERO, DiskPos::HOME, 0, 8);
        let b = plain.media_access(SimTime::ZERO, DiskPos::HOME, 0, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn pipelined_cut_with_retired_prefix_recovers_clean() {
        use crate::crash::{recover_and_check, CrashState, LayoutKind};
        use cnp_core::{DataMode, FileSystem, FsConfig};
        use cnp_layout::FileKind;
        use cnp_sim::SimTime;

        let sim = Sim::new(77);
        let h = sim.handle();
        // The cut lands while the depth-8 engine has a batch in flight;
        // the dying disk durably retires a seeded prefix of the
        // outstanding writes without acknowledging them.
        let plan = FaultPlanBuilder::new(77)
            .power_cut_at_op(300)
            .torn_write_sectors(2)
            .random_cut_retire(8)
            .build();
        assert!(plan.cut_retire_ops <= 8);
        let (driver, disk) =
            FaultyDisk::new(Box::new(Hp97560::new()), plan).spawn(&h, "p0", Box::new(CLook));
        let layout = LayoutKind::Lfs.build(&h, driver.clone());
        let cfg = FsConfig { data_mode: DataMode::Real, queue_depth: 8, ..FsConfig::default() };
        let fs = FileSystem::new(&h, layout, cfg);
        let h2 = h.clone();
        h.spawn("t", async move {
            fs.format().await.unwrap();
            let payload = vec![0x5Au8; 48 * 1024];
            for i in 0.. {
                let r = async {
                    let ino = fs.create(&format!("/f{i}"), FileKind::Regular).await?;
                    fs.write(ino, 0, payload.len() as u64, Some(&payload)).await?;
                    fs.sync().await
                }
                .await;
                if r.is_err() {
                    break;
                }
            }
            assert!(disk.is_dead(), "the cut must have fired");
            // Power-on from the captured image: recovery + fsck must
            // digest whatever prefix the dying disk retired.
            let state = CrashState::capture(&fs, &disk).await;
            fs.shutdown();
            let (driver2, _disk2) = state.restore_hp(&h2, "p1");
            let mut layout2 = LayoutKind::Lfs.build(&h2, driver2.clone());
            let outcome = recover_and_check(&h2, &mut layout2).await.expect("recovery");
            assert!(
                outcome.post.clean(),
                "retired-prefix crash must verify clean: {:?}",
                outcome.post.violations
            );
        });
        sim.run_until(SimTime::from_nanos(u64::MAX / 2));
    }

    #[test]
    fn spawned_stack_executes_the_plan() {
        let sim = Sim::new(5);
        let h = sim.handle();
        let plan = FaultPlanBuilder::new(1).power_cut_at_op(3).build();
        let (driver, disk) =
            FaultyDisk::new(Box::new(Hp97560::new()), plan).spawn(&h, "f0", Box::new(CLook));
        let d2 = driver.clone();
        h.spawn("t", async move {
            for i in 0..3u64 {
                d2.read(i * 64, 8).await.expect("pre-cut reads succeed");
            }
            let err = d2.read(999, 8).await.unwrap_err();
            assert!(matches!(err, IoError::PowerCut));
            d2.shutdown();
        });
        sim.run();
        assert!(disk.is_dead());
    }
}
