//! Crash-state capture and recovery verification.
//!
//! A "crash" in this framework is: stop the workload at a cut point,
//! clone the durable on-disk image at that instant
//! ([`cnp_disk::DiskClient::platter_image`]), keep whatever the flush
//! policy stores in battery-backed NVRAM
//! ([`cnp_core::FileSystem::nvram_snapshot`]), and throw everything
//! else away. Recovery then spawns a fresh disk from the image, runs
//! the layout's [`StorageLayout::recover`] path, repairs with the fsck
//! walker, optionally replays the NVRAM contents, and measures what was
//! lost against the acknowledged state.

use cnp_core::{FileSystem, FsError, FsResult, NvramSnapshot};
use cnp_disk::{
    spawn_disk_with_image, Backend, CLook, DiskClient, DiskDriver, DiskImage, DiskModel, DiskOpts,
    FaultPlan, Hp97560, ScsiBus, SimBackend,
};
use cnp_layout::{
    FfsLayout, FfsParams, Ino, Layout, LayoutError, LfsLayout, LfsParams, RecoveryStats,
    StorageLayout, BLOCK_SIZE,
};
use cnp_sim::{Handle, SimDuration, SimTime};
use cnp_trace::AckedFile;

use crate::check::{self, FsckReport, RepairReport};

/// Which storage layout a crash cell exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutKind {
    /// Segmented log-structured layout (checkpoint + roll-forward).
    Lfs,
    /// FFS-like update-in-place layout (bitmap rebuild).
    Ffs,
}

impl LayoutKind {
    /// Display/CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            LayoutKind::Lfs => "lfs",
            LayoutKind::Ffs => "ffs",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<LayoutKind> {
        match s {
            "lfs" => Some(LayoutKind::Lfs),
            "ffs" => Some(LayoutKind::Ffs),
            _ => None,
        }
    }

    /// Builds the layout over a driver (crash-sweep scale parameters:
    /// small segments / inode tables keep recovery scans cheap).
    pub fn build(&self, handle: &Handle, driver: DiskDriver) -> Layout {
        match self {
            LayoutKind::Lfs => Layout::Lfs(LfsLayout::new(handle, driver, LfsParams::default())),
            LayoutKind::Ffs => {
                Layout::Ffs(FfsLayout::new(handle, driver, FfsParams { ninodes: 4096, ngroups: 8 }))
            }
        }
    }

    /// Like [`LayoutKind::build`], tuned for many-client throughput
    /// runs: LFS seals segments through its background writer, so an
    /// engine holding the layout lock across a seal no longer halts the
    /// whole fleet for one media write. Crash campaigns keep using
    /// [`LayoutKind::build`] — the synchronous seal is the configuration
    /// the crash-point enumeration exercises. FFS has no seal and
    /// builds identically.
    pub fn build_scaled(&self, handle: &Handle, driver: DiskDriver) -> Layout {
        match self {
            LayoutKind::Lfs => Layout::Lfs(LfsLayout::new(
                handle,
                driver,
                LfsParams { background_seal: true, ..LfsParams::default() },
            )),
            LayoutKind::Ffs => self.build(handle, driver),
        }
    }
}

/// Everything that survives a power cut.
#[derive(Debug, Clone)]
pub struct CrashState {
    /// The durable on-disk image at the cut point.
    pub image: DiskImage,
    /// Battery-backed cache contents (empty without NVRAM).
    pub nvram: NvramSnapshot,
    /// Whether the NVRAM-resident LFS staging segment reached the image
    /// (always true without NVRAM, where there is nothing to seal).
    /// False means the disk was already dead at capture — an injected
    /// power cut — so the battery-backed-staging model could not be
    /// applied and acknowledged writes in the staging buffer are lost.
    pub staging_sealed: bool,
    /// Virtual time of the cut.
    pub cut_at: SimTime,
}

impl CrashState {
    /// Captures the crash state of a running stack at this instant.
    ///
    /// For NVRAM configurations the layout's staging buffer is treated
    /// as battery-backed too (`FileSystem::seal_nvram_staging`), so it
    /// is sealed into the image before the snapshot — the moral
    /// equivalent of replaying the NVRAM segment buffer at power-on.
    /// The image includes the disk controller's write buffer
    /// ([`DiskClient::image_with_write_buffer`]): immediate-reported
    /// writes are only crash-safe if that cache is battery-backed, and
    /// that is the assumption the sweep states. A disk killed by an
    /// injected power cut has already lost its buffer, so for the
    /// `FaultPlan` path this is identical to the bare platter.
    pub async fn capture(fs: &FileSystem, disk: &DiskClient) -> CrashState {
        let staging_sealed = fs.seal_nvram_staging().await.is_ok();
        CrashState {
            image: disk.image_with_write_buffer(),
            nvram: fs.nvram_snapshot(),
            staging_sealed,
            cut_at: fs.handle().now(),
        }
    }

    /// Spawns a pristine disk + driver from the captured image (the
    /// power-on after the crash).
    pub fn restore_disk(
        &self,
        handle: &Handle,
        name: &str,
        model: Box<dyn DiskModel>,
    ) -> (DiskDriver, DiskClient) {
        let bus = ScsiBus::new(handle);
        let disk = spawn_disk_with_image(
            handle,
            &format!("disk:{name}"),
            model,
            bus.clone(),
            DiskOpts::default(),
            FaultPlan::default(),
            self.image.clone(),
        );
        let driver = DiskDriver::new(
            handle,
            name,
            Backend::Sim(SimBackend { bus, disk: disk.clone(), host_id: 7 }),
            Box::new(CLook),
        );
        (driver, disk)
    }

    /// [`CrashState::restore_disk`] with the default HP 97560 model.
    pub fn restore_hp(&self, handle: &Handle, name: &str) -> (DiskDriver, DiskClient) {
        self.restore_disk(handle, name, Box::new(Hp97560::new()))
    }
}

/// Outcome of recovery + verification on one crash state.
#[derive(Debug, Clone)]
pub struct RecoveryOutcome {
    /// What the layout's recovery pass did.
    pub stats: RecoveryStats,
    /// Walker report straight after recovery (pre-repair).
    pub pre: FsckReport,
    /// What the fsck repair changed.
    pub repairs: RepairReport,
    /// Walker report after repair — must be clean.
    pub post: FsckReport,
    /// Virtual time spent in recover + repair.
    pub recovery_time: SimDuration,
}

/// Runs the layout's recovery, then the fsck walker, repairing anything
/// the crash broke, and re-verifying.
pub async fn recover_and_check(handle: &Handle, layout: &mut Layout) -> FsResult<RecoveryOutcome> {
    let t0 = handle.now();
    let stats = layout.recover().await?;
    let pre = check::check(layout).await;
    let (repairs, post) = if pre.clean() {
        (RepairReport { rounds: 0, ..RepairReport::default() }, pre.clone())
    } else {
        check::repair(layout).await?
    };
    let recovery_time = handle.now() - t0;
    Ok(RecoveryOutcome { stats, pre, repairs, post, recovery_time })
}

/// Replays an NVRAM snapshot into a recovered file system: dirty blocks
/// are re-established exactly as the battery-backed cache preserved
/// them (real bytes for metadata, length-only for simulated payloads),
/// sizes are restored, and everything is synced. Returns the number of
/// blocks replayed; blocks of files whose identity did not survive
/// (created after the last durable namespace update) are skipped.
///
/// Restoration goes through [`FileSystem::restore_block`], not the
/// client write path: in simulated-payload mode `write` drops payload
/// bytes by design, which would replace an NVRAM-resident *directory*
/// block with a simulated payload and lose the very namespace the
/// snapshot preserved (every file under that directory then read as
/// crash loss — the bug the crash-point enumerator surfaced).
pub async fn replay_nvram(fs: &FileSystem, snap: &NvramSnapshot) -> FsResult<u64> {
    if snap.is_empty() {
        return Ok(0);
    }
    let mut replayed = 0u64;
    let bs = BLOCK_SIZE as u64;
    for (ino, blk, data) in &snap.blocks {
        let size =
            snap.sizes.iter().find(|(i, _)| i == ino).map(|&(_, s)| s).unwrap_or((blk + 1) * bs);
        if size <= blk * bs {
            continue; // Beyond the acknowledged size: nothing to restore.
        }
        match fs.restore_block(Ino(*ino), *blk, data.clone()).await {
            Ok(()) => replayed += 1,
            // Only a missing inode means the file's identity died with
            // the crash; any other failure must surface, or loss
            // accounting would blame the crash for replay bugs.
            Err(FsError::Layout(LayoutError::BadInode(_))) => {}
            Err(e) => return Err(e),
        }
    }
    for &(ino, size) in &snap.sizes {
        match fs.restore_size(Ino(ino), size).await {
            Ok(()) | Err(FsError::Layout(LayoutError::BadInode(_))) => {}
            Err(e) => return Err(e),
        }
    }
    fs.sync().await?;
    Ok(replayed)
}

/// Applies a staging-buffer export ([`cnp_core::FileSystem::staging_image`])
/// to a captured disk image — the dead-disk equivalent of
/// [`cnp_core::FileSystem::seal_nvram_staging`]. A battery-backed
/// staging segment survives a cut that killed the disk first; since the
/// dead disk can take no writes, its would-be seal writes are applied
/// to the image directly (simulated payloads erase their sectors,
/// matching the platter store's real-bytes-only contract).
pub fn apply_staged_to_image(
    image: &mut DiskImage,
    staged: &[(cnp_layout::BlockAddr, cnp_disk::Payload)],
    sector_size: u32,
) {
    let spb = (BLOCK_SIZE / sector_size) as u64;
    let ss = sector_size as usize;
    for (addr, payload) in staged {
        let base = addr.0 * spb;
        match payload.bytes() {
            Some(bytes) => {
                for s in 0..spb {
                    let lo = (s as usize) * ss;
                    let mut sector = vec![0u8; ss];
                    if lo < bytes.len() {
                        let hi = (lo + ss).min(bytes.len());
                        sector[..hi - lo].copy_from_slice(&bytes[lo..hi]);
                    }
                    image.insert(base + s, sector.into_boxed_slice());
                }
            }
            None => {
                for s in 0..spb {
                    image.remove(&(base + s));
                }
            }
        }
    }
}

/// One crash state's full verification: restore the disk, run the
/// layout's recovery, walk + repair with fsck, replay NVRAM into a
/// fresh engine, and account acknowledged losses. This is the shared
/// phase-B of the crash sweep and the `cnp-check` crash-point
/// enumerator — one cell, from captured state to verdict.
#[derive(Debug, Clone)]
pub struct VerifiedRecovery {
    /// Recovery + fsck outcome.
    pub outcome: RecoveryOutcome,
    /// NVRAM blocks replayed into the recovered system.
    pub nvram_replayed: u64,
    /// Acknowledged-write loss accounting.
    pub loss: LossReport,
}

/// Runs recovery + fsck + NVRAM replay + loss accounting on one
/// captured crash state. `cfg` must match the crashed engine's
/// configuration (the recovered engine is built from it).
pub async fn verify_crash_state(
    handle: &Handle,
    kind: LayoutKind,
    state: &CrashState,
    acked: &[AckedFile],
    cfg: cnp_core::FsConfig,
) -> FsResult<VerifiedRecovery> {
    let (driver, _disk) = state.restore_hp(handle, "verify");
    let mut layout = kind.build(handle, driver.clone());
    let outcome = recover_and_check(handle, &mut layout).await?;
    let fs = FileSystem::new(handle, layout, cfg);
    let nvram_replayed = replay_nvram(&fs, &state.nvram).await?;
    let loss = measure_loss(&fs, acked, state.cut_at).await;
    fs.shutdown();
    Ok(VerifiedRecovery { outcome, nvram_replayed, loss })
}

/// Acknowledged-write loss accounting for one crash cell.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LossReport {
    /// Files with acknowledged writes at the cut.
    pub acked_files: u64,
    /// Files missing entirely after recovery.
    pub lost_files: u64,
    /// Acknowledged bytes not covered by recovered sizes.
    pub lost_bytes: u64,
    /// Age (ms at the cut) of the oldest lost acknowledged update; the
    /// paper-style "data-loss window". 0.0 when nothing was lost.
    pub loss_window_ms: f64,
}

/// Compares recovered state against the acknowledged files of the
/// replayed workload (`acked` from `cnp-trace`'s `replay_with`).
///
/// Deletions are not judged (a crash may resurrect a post-checkpoint
/// delete; that is a documented non-goal), and neither is block-level
/// content in simulated-payload mode — sizes are the observable.
pub async fn measure_loss(fs: &FileSystem, acked: &[AckedFile], cut_at: SimTime) -> LossReport {
    let mut report = LossReport { acked_files: acked.len() as u64, ..LossReport::default() };
    let mut oldest_lost_ns: Option<u64> = None;
    for a in acked {
        let recovered = match fs.stat(&a.path).await {
            Ok(inode) => Some(inode.size),
            Err(_) => None,
        };
        match recovered {
            Some(got) if got >= a.size => {}
            Some(got) => {
                report.lost_bytes += a.size - got;
                oldest_lost_ns =
                    Some(oldest_lost_ns.map_or(a.last_ack_ns, |o| o.min(a.last_ack_ns)));
            }
            None => {
                report.lost_files += 1;
                report.lost_bytes += a.size;
                oldest_lost_ns =
                    Some(oldest_lost_ns.map_or(a.last_ack_ns, |o| o.min(a.last_ack_ns)));
            }
        }
    }
    if let Some(ns) = oldest_lost_ns {
        report.loss_window_ms = cut_at.as_nanos().saturating_sub(ns) as f64 / 1e6;
    }
    report
}
