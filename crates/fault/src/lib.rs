//! # cnp-fault — deterministic fault injection and crash recovery
//!
//! The paper's central claim is that one component framework
//! instantiates both the off-line simulator (Patsy) and the on-line
//! file system (PFS), so experiments that would be destructive on-line
//! run off-line at simulation speed — and nothing is more destructive
//! than a crash. This crate turns crashes into a first-class, seeded,
//! replayable scenario family:
//!
//! * [`plan`] — a builder deriving deterministic [`cnp_disk::FaultPlan`]
//!   schedules (power cuts at operation N or virtual time T, torn
//!   writes, latent sector errors, transient bus faults) from a seed;
//! * [`faulty`] — [`FaultyDisk`], a wrapper implementing the existing
//!   disk-model interface so it composes with the HP 97560,
//!   `SimpleDisk`, every I/O scheduler, and the driver unchanged;
//! * [`mod@check`] — an fsck-style consistency walker over the abstract
//!   [`cnp_layout::StorageLayout`] interface (LFS, FFS, sim-guess):
//!   verify inode/dirent/block-map invariants, then repair what a crash
//!   broke;
//! * [`crash`] — crash-state capture (on-disk image at the cut point +
//!   whatever the flush policy keeps in NVRAM), remount/recover,
//!   NVRAM replay, and loss accounting.
//!
//! Everything is pure data + seeded RNG, so a crash experiment is a
//! deterministic function of (configuration, seed) like every other
//! experiment in the framework.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod crash;
pub mod faulty;
pub mod plan;

pub use check::{check, repair, FsckReport, RepairReport, Violation};
pub use crash::{
    apply_staged_to_image, measure_loss, recover_and_check, replay_nvram, verify_crash_state,
    CrashState, LayoutKind, LossReport, RecoveryOutcome, VerifiedRecovery,
};
pub use faulty::FaultyDisk;
pub use plan::{cut_points, jittered_cut_points, FaultPlanBuilder};
