//! Seeded derivation of deterministic fault schedules.
//!
//! A [`cnp_disk::FaultPlan`] is pure data; this module is the only
//! place randomness enters, and it is always an explicit seed, so a
//! fault scenario replays bit-identically — the property every other
//! experiment in the framework already has.

use cnp_disk::FaultPlan;
use cnp_sim::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builder for deterministic [`FaultPlan`]s.
///
/// ```
/// use cnp_fault::FaultPlanBuilder;
///
/// let plan = FaultPlanBuilder::new(42)
///     .power_cut_at_op(100)
///     .torn_write_sectors(4)
///     .random_latent_sectors(8, 1_000_000)
///     .build();
/// assert_eq!(plan.power_cut_at_op, Some(100));
/// assert_eq!(plan.latent_ranges.len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlanBuilder {
    plan: FaultPlan,
    rng: StdRng,
}

impl FaultPlanBuilder {
    /// Starts an empty plan; `seed` drives every `random_*` method.
    pub fn new(seed: u64) -> Self {
        FaultPlanBuilder { plan: FaultPlan::default(), rng: StdRng::seed_from_u64(seed) }
    }

    /// Power-cut the disk when it serves its `op`-th request (0-based).
    pub fn power_cut_at_op(mut self, op: u64) -> Self {
        self.plan.power_cut_at_op = Some(op);
        self
    }

    /// Power-cut the disk at virtual time `t`.
    pub fn power_cut_at(mut self, t: SimTime) -> Self {
        self.plan.power_cut_at = Some(t);
        self
    }

    /// When the power cut lands on a write, let this many sectors of it
    /// become durable first (a torn write).
    pub fn torn_write_sectors(mut self, sectors: u32) -> Self {
        self.plan.torn_write_sectors = sectors;
        self
    }

    /// After the cut, let this many outstanding writes (an arrival-order
    /// prefix of the in-flight batch) retire durably — unacknowledged.
    pub fn cut_retire_ops(mut self, ops: u64) -> Self {
        self.plan.cut_retire_ops = ops;
        self
    }

    /// Models the controller's immediate-report write buffer as
    /// battery-backed: at the cut its acked contents retire to the
    /// platter instead of dying with the electronics (the assumption
    /// graceful crash capture already states).
    pub fn cut_preserves_buffer(mut self) -> Self {
        self.plan.cut_preserves_buffer = true;
        self
    }

    /// Draws the retired-prefix length uniformly from `[0, max_ops]`,
    /// deterministically from the seed — every crash replay samples a
    /// different (but replayable) interleaving of the outstanding set.
    pub fn random_cut_retire(mut self, max_ops: u64) -> Self {
        self.plan.cut_retire_ops = self.rng.gen_range(0..=max_ops);
        self
    }

    /// Adds one latent sector-error range `[lo, hi)` (reads fail until
    /// the sectors are rewritten).
    pub fn latent_range(mut self, lo: u64, hi: u64) -> Self {
        self.plan.latent_ranges.push((lo, hi));
        self
    }

    /// Scatters `count` single latent sectors uniformly over
    /// `[0, capacity_sectors)`, deterministically from the seed.
    pub fn random_latent_sectors(mut self, count: usize, capacity_sectors: u64) -> Self {
        for _ in 0..count {
            let s = self.rng.gen_range(0..capacity_sectors.max(1));
            self.plan.latent_ranges.push((s, s + 1));
        }
        self
    }

    /// Adds a hard media-error range `[lo, hi)` (reads and writes fail).
    pub fn media_range(mut self, lo: u64, hi: u64) -> Self {
        self.plan.bad_ranges.push((lo, hi));
        self
    }

    /// Makes every `n`-th request fail with a transient bus error.
    pub fn transient_every(mut self, n: u64) -> Self {
        self.plan.transient_every = Some(n);
        self
    }

    /// Finishes the plan.
    pub fn build(self) -> FaultPlan {
        self.plan
    }
}

/// `cuts` evenly spaced interior cut points over a workload of
/// `total_ops` operations (never 0, never `total_ops`).
pub fn cut_points(total_ops: u64, cuts: u32) -> Vec<u64> {
    let cuts = cuts.max(1) as u64;
    (1..=cuts).map(|i| (i * total_ops / (cuts + 1)).max(1)).collect()
}

/// Like [`cut_points`] but with seeded jitter of up to ±half a stride,
/// so sweeps also sample unaligned crash instants.
pub fn jittered_cut_points(seed: u64, total_ops: u64, cuts: u32) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let stride = (total_ops / (cuts.max(1) as u64 + 1)).max(2);
    cut_points(total_ops, cuts)
        .into_iter()
        .map(|p| {
            let j = rng.gen_range(0..stride) as i64 - (stride / 2) as i64;
            p.saturating_add_signed(j).clamp(1, total_ops.saturating_sub(1).max(1))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes_fields() {
        let plan = FaultPlanBuilder::new(7)
            .power_cut_at_op(10)
            .power_cut_at(SimTime::from_nanos(123))
            .torn_write_sectors(2)
            .cut_retire_ops(3)
            .latent_range(5, 9)
            .media_range(100, 200)
            .transient_every(3)
            .build();
        assert_eq!(plan.power_cut_at_op, Some(10));
        assert_eq!(plan.power_cut_at, Some(SimTime::from_nanos(123)));
        assert_eq!(plan.torn_write_sectors, 2);
        assert_eq!(plan.cut_retire_ops, 3);
        assert_eq!(plan.latent_ranges, vec![(5, 9)]);
        assert_eq!(plan.bad_ranges, vec![(100, 200)]);
        assert_eq!(plan.transient_every, Some(3));
    }

    #[test]
    fn random_cut_retire_is_seeded_and_bounded() {
        let a = FaultPlanBuilder::new(5).random_cut_retire(16).build();
        let b = FaultPlanBuilder::new(5).random_cut_retire(16).build();
        assert_eq!(a.cut_retire_ops, b.cut_retire_ops);
        assert!(a.cut_retire_ops <= 16);
    }

    #[test]
    fn random_parts_are_seed_deterministic() {
        let a = FaultPlanBuilder::new(11).random_latent_sectors(16, 1 << 20).build();
        let b = FaultPlanBuilder::new(11).random_latent_sectors(16, 1 << 20).build();
        let c = FaultPlanBuilder::new(12).random_latent_sectors(16, 1 << 20).build();
        assert_eq!(a.latent_ranges, b.latent_ranges);
        assert_ne!(a.latent_ranges, c.latent_ranges);
    }

    #[test]
    fn cut_points_are_interior_and_sorted() {
        let pts = cut_points(1000, 16);
        assert_eq!(pts.len(), 16);
        assert!(pts.windows(2).all(|w| w[0] <= w[1]));
        assert!(pts.iter().all(|&p| (1..1000).contains(&p)));
        let j = jittered_cut_points(42, 1000, 16);
        assert_eq!(j, jittered_cut_points(42, 1000, 16), "jitter must be seeded");
        assert!(j.iter().all(|&p| (1..1000).contains(&p)));
    }
}
