//! Fsck-style consistency walker over the abstract storage-layout
//! interface.
//!
//! [`check`] walks the directory tree from the root and verifies the
//! invariants any layout (LFS, FFS, sim-guess) must uphold after a
//! crash + recovery: every dirent references a readable inode of the
//! right kind, directory content decodes, every mapped block address is
//! on the device, and no block is claimed by two files. [`repair`]
//! applies the classic fsck remedies — drop dangling entries, truncate
//! at the first bad pointer — and re-checks until clean.

use std::collections::{BTreeMap, BTreeSet};

use cnp_disk::Payload;
use cnp_layout::dir::{self, Dirent};
use cnp_layout::{BlockAddr, FileKind, Ino, LResult, StorageLayout, BLOCK_SIZE};

/// One invariant violation found by the walker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The root inode is missing or not a directory.
    RootBroken(String),
    /// A directory entry references an unreadable/free inode.
    DanglingDirent {
        /// Directory holding the entry.
        dir: Ino,
        /// Entry name.
        name: String,
        /// Referenced (broken) inode.
        ino: Ino,
    },
    /// A directory entry's kind disagrees with its inode.
    KindMismatch {
        /// Directory holding the entry.
        dir: Ino,
        /// Entry name.
        name: String,
        /// Referenced inode.
        ino: Ino,
    },
    /// An inode is referenced by more than one directory entry.
    MultiplyReferenced {
        /// Directory holding the duplicate entry.
        dir: Ino,
        /// Entry name.
        name: String,
        /// Referenced inode.
        ino: Ino,
    },
    /// A directory block within the directory's size is missing.
    DirDataMissing {
        /// The directory.
        dir: Ino,
        /// Missing file-block index.
        blk: u64,
    },
    /// Directory content failed to decode.
    DirCorrupt {
        /// The directory.
        dir: Ino,
        /// Decoder error.
        detail: String,
    },
    /// Mapping a file block failed at the layout.
    MapError {
        /// Owning inode.
        ino: Ino,
        /// File-block index.
        blk: u64,
        /// Layout error text.
        detail: String,
    },
    /// A block pointer leaves the device.
    AddrOutOfRange {
        /// Owning inode.
        ino: Ino,
        /// File-block index.
        blk: u64,
        /// The offending address.
        addr: BlockAddr,
    },
    /// Two files (or two blocks of one file) claim the same address.
    CrossLink {
        /// Second claimant inode.
        ino: Ino,
        /// Second claimant file-block index.
        blk: u64,
        /// First claimant inode.
        other: Ino,
        /// First claimant file-block index.
        other_blk: u64,
        /// The shared address.
        addr: BlockAddr,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::RootBroken(d) => write!(f, "root broken: {d}"),
            Violation::DanglingDirent { dir, name, ino } => {
                write!(f, "dangling dirent {dir}/{name} -> {ino}")
            }
            Violation::KindMismatch { dir, name, ino } => {
                write!(f, "kind mismatch {dir}/{name} -> {ino}")
            }
            Violation::MultiplyReferenced { dir, name, ino } => {
                write!(f, "multiply referenced {ino} via {dir}/{name}")
            }
            Violation::DirDataMissing { dir, blk } => {
                write!(f, "directory {dir} block {blk} missing")
            }
            Violation::DirCorrupt { dir, detail } => write!(f, "directory {dir} corrupt: {detail}"),
            Violation::MapError { ino, blk, detail } => {
                write!(f, "map error {ino} block {blk}: {detail}")
            }
            Violation::AddrOutOfRange { ino, blk, addr } => {
                write!(f, "{ino} block {blk} points off-device at {addr}")
            }
            Violation::CrossLink { ino, blk, other, other_blk, addr } => {
                write!(f, "cross-link at {addr}: {ino}:{blk} vs {other}:{other_blk}")
            }
        }
    }
}

/// Walker result: violations plus coverage counters.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// Invariant violations, in walk order.
    pub violations: Vec<Violation>,
    /// Directories visited.
    pub dirs: u64,
    /// Files visited.
    pub files: u64,
    /// Mapped blocks verified.
    pub blocks: u64,
    /// Every inode reachable from the root (ascending).
    pub reachable: Vec<u64>,
    /// Allocated inodes unreachable from the root: orphans. `repair`
    /// attaches these to `/lost+found`.
    pub orphans: Vec<u64>,
}

impl FsckReport {
    /// True if no violation was found.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// What [`repair`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Directory entries dropped (dangling/mismatched/duplicate).
    pub entries_removed: u64,
    /// Directories reset because their content was unreadable.
    pub dirs_reset: u64,
    /// Files truncated at their first bad block pointer.
    pub files_truncated: u64,
    /// Unreachable allocated inodes attached to `/lost+found`.
    pub orphans_attached: u64,
    /// Repair rounds run (each ends with a re-check).
    pub rounds: u64,
}

/// Walks the tree and reports every invariant violation.
pub async fn check<L: StorageLayout>(layout: &mut L) -> FsckReport {
    let mut report = FsckReport::default();
    let capacity_blocks = {
        let driver = layout.driver();
        driver.capacity_sectors() / (BLOCK_SIZE / driver.sector_size()) as u64
    };
    let root = match layout.get_inode(Ino::ROOT).await {
        Ok(i) => i,
        Err(e) => {
            report.violations.push(Violation::RootBroken(e.to_string()));
            return report;
        }
    };
    if root.kind != FileKind::Directory {
        report.violations.push(Violation::RootBroken("root is not a directory".into()));
        return report;
    }
    let mut stack: Vec<Ino> = vec![Ino::ROOT];
    let mut visited: BTreeSet<u64> = BTreeSet::new();
    visited.insert(Ino::ROOT.0);
    // addr -> first claimant (ino, file block).
    let mut owners: BTreeMap<u64, (Ino, u64)> = BTreeMap::new();
    while let Some(dir_ino) = stack.pop() {
        report.dirs += 1;
        let Ok(dir_inode) = layout.get_inode(dir_ino).await else {
            continue; // Reported when the dirent was checked.
        };
        walk_blocks(layout, &dir_inode, capacity_blocks, &mut owners, &mut report).await;
        let entries = match read_dir(layout, &dir_inode).await {
            Ok(entries) => entries,
            Err(v) => {
                report.violations.push(v);
                continue;
            }
        };
        for entry in entries {
            let inode = match layout.get_inode(entry.ino).await {
                Ok(i) => i,
                Err(_) => {
                    report.violations.push(Violation::DanglingDirent {
                        dir: dir_ino,
                        name: entry.name.clone(),
                        ino: entry.ino,
                    });
                    continue;
                }
            };
            if inode.kind != entry.kind {
                report.violations.push(Violation::KindMismatch {
                    dir: dir_ino,
                    name: entry.name.clone(),
                    ino: entry.ino,
                });
                continue;
            }
            if !visited.insert(entry.ino.0) {
                report.violations.push(Violation::MultiplyReferenced {
                    dir: dir_ino,
                    name: entry.name.clone(),
                    ino: entry.ino,
                });
                continue;
            }
            if inode.kind == FileKind::Directory {
                stack.push(entry.ino);
            } else {
                report.files += 1;
                walk_blocks(layout, &inode, capacity_blocks, &mut owners, &mut report).await;
            }
        }
    }
    report.reachable = visited.iter().copied().collect();
    report.orphans =
        layout.allocated_inos().into_iter().map(|i| i.0).filter(|i| !visited.contains(i)).collect();
    report
}

/// Verifies one inode's block map, feeding the cross-link table.
async fn walk_blocks<L: StorageLayout>(
    layout: &mut L,
    inode: &cnp_layout::Inode,
    capacity_blocks: u64,
    owners: &mut BTreeMap<u64, (Ino, u64)>,
    report: &mut FsckReport,
) {
    for blk in 0..inode.blocks() {
        let addr = match layout.map_block(inode, blk).await {
            Ok(Some(a)) => a,
            Ok(None) => continue, // Hole: fine for files; dirs check it in read_dir.
            Err(e) => {
                report.violations.push(Violation::MapError {
                    ino: inode.ino,
                    blk,
                    detail: e.to_string(),
                });
                continue;
            }
        };
        if addr.0 >= capacity_blocks {
            report.violations.push(Violation::AddrOutOfRange { ino: inode.ino, blk, addr });
            continue;
        }
        report.blocks += 1;
        if let Some(&(other, other_blk)) = owners.get(&addr.0) {
            if other != inode.ino || other_blk != blk {
                report.violations.push(Violation::CrossLink {
                    ino: inode.ino,
                    blk,
                    other,
                    other_blk,
                    addr,
                });
            }
        } else {
            owners.insert(addr.0, (inode.ino, blk));
        }
    }
}

/// Reads and decodes a directory's content through the layout.
async fn read_dir<L: StorageLayout>(
    layout: &mut L,
    inode: &cnp_layout::Inode,
) -> Result<Vec<Dirent>, Violation> {
    let mut bytes = Vec::with_capacity(inode.size as usize);
    for blk in 0..inode.blocks() {
        match layout.read_file_block(inode, blk).await {
            Ok(Some(p)) => match p.bytes() {
                Some(b) => bytes.extend_from_slice(b),
                None => return Err(Violation::DirDataMissing { dir: inode.ino, blk }),
            },
            Ok(None) => return Err(Violation::DirDataMissing { dir: inode.ino, blk }),
            Err(e) => return Err(Violation::DirCorrupt { dir: inode.ino, detail: e.to_string() }),
        }
    }
    bytes.truncate(inode.size as usize);
    dir::decode(&bytes).map_err(|e| Violation::DirCorrupt { dir: inode.ino, detail: e })
}

/// Repairs what [`check`] finds, fsck-style, and re-checks until clean
/// (or a bounded number of rounds).
///
/// Remedies: unreadable directory content resets the directory to
/// empty; dangling, kind-mismatched and duplicate entries are dropped;
/// files with bad pointers are truncated at the first bad block. Once
/// the tree checks clean, allocated-but-unreachable inodes (orphans —
/// e.g. files whose directory entry never became durable before a
/// crash) are attached to `/lost+found` instead of leaking, and the
/// adopted subtrees are re-checked.
pub async fn repair<L: StorageLayout>(layout: &mut L) -> LResult<(RepairReport, FsckReport)> {
    let mut rep = RepairReport::default();
    loop {
        let report = check(layout).await;
        rep.rounds += 1;
        if rep.rounds >= 8 {
            return Ok((rep, report));
        }
        if report.clean() {
            let adopted = adopt_orphans(layout, &report.orphans).await?;
            rep.orphans_attached += adopted;
            if adopted == 0 {
                return Ok((rep, report));
            }
            // Adopted subtrees are now reachable: verify them too.
            continue;
        }
        // Group entry-level drops per directory.
        let mut drops: BTreeMap<u64, Vec<String>> = BTreeMap::new();
        // File-level truncation points (first bad block per inode).
        let mut cuts: BTreeMap<u64, u64> = BTreeMap::new();
        let mut resets: BTreeSet<u64> = BTreeSet::new();
        for v in &report.violations {
            match v {
                Violation::RootBroken(_) => {
                    // Nothing a generic walker can do: the layout's own
                    // recover() is responsible for the root.
                }
                Violation::DanglingDirent { dir, name, .. }
                | Violation::KindMismatch { dir, name, .. }
                | Violation::MultiplyReferenced { dir, name, .. } => {
                    drops.entry(dir.0).or_default().push(name.clone());
                }
                Violation::DirDataMissing { dir, .. } | Violation::DirCorrupt { dir, .. } => {
                    resets.insert(dir.0);
                }
                Violation::MapError { ino, blk, .. }
                | Violation::AddrOutOfRange { ino, blk, .. }
                | Violation::CrossLink { ino, blk, .. } => {
                    let e = cuts.entry(ino.0).or_insert(*blk);
                    *e = (*e).min(*blk);
                }
            }
        }
        for dir in resets {
            let mut inode = layout.get_inode(Ino(dir)).await?;
            layout.truncate(&mut inode, 0).await?;
            inode.size = 0;
            layout.put_inode(&inode).await?;
            rep.dirs_reset += 1;
        }
        for (dir, names) in drops {
            let dir_ino = Ino(dir);
            let Ok(inode) = layout.get_inode(dir_ino).await else { continue };
            let Ok(mut entries) = read_dir(layout, &inode).await else { continue };
            let before = entries.len();
            entries.retain(|e| !names.contains(&e.name));
            rep.entries_removed += (before - entries.len()) as u64;
            write_dir(layout, dir_ino, &entries).await?;
        }
        for (ino, blk) in cuts {
            let Ok(mut inode) = layout.get_inode(Ino(ino)).await else { continue };
            layout.truncate(&mut inode, blk).await?;
            rep.files_truncated += 1;
        }
    }
}

/// The classic fsck orphanage directory at the root.
const LOST_FOUND: &str = "lost+found";

/// Attaches unreachable allocated inodes to `/lost+found` (created on
/// first use), naming each `orphan-<ino>`. Returns how many were
/// attached; inodes that cannot be read are skipped (their slots stay
/// leaked rather than risking a dangling entry).
async fn adopt_orphans<L: StorageLayout>(layout: &mut L, orphans: &[u64]) -> LResult<u64> {
    if orphans.is_empty() {
        return Ok(0);
    }
    let root = layout.get_inode(Ino::ROOT).await?;
    let Ok(mut root_entries) = read_dir(layout, &root).await else {
        return Ok(0); // Root unreadable: structural repair comes first.
    };
    let lf_ino = match dir::find(&root_entries, LOST_FOUND) {
        Some(e) if e.kind == FileKind::Directory => e.ino,
        // Something non-directory squats on the name: leave it alone.
        Some(_) => return Ok(0),
        None => {
            let inode = layout.alloc_ino(FileKind::Directory, 0)?;
            layout.put_inode(&inode).await?;
            dir::add_entry(
                &mut root_entries,
                Dirent { ino: inode.ino, kind: FileKind::Directory, name: LOST_FOUND.into() },
            )
            .map_err(cnp_layout::LayoutError::Corrupt)?;
            write_dir(layout, Ino::ROOT, &root_entries).await?;
            inode.ino
        }
    };
    let lf_inode = layout.get_inode(lf_ino).await?;
    let mut entries = read_dir(layout, &lf_inode).await.unwrap_or_default();
    let mut attached = 0u64;
    for &o in orphans {
        if o == lf_ino.0 {
            continue;
        }
        let Ok(inode) = layout.get_inode(Ino(o)).await else { continue };
        let name = format!("orphan-{o}");
        if dir::find(&entries, &name).is_some() {
            continue;
        }
        if dir::add_entry(&mut entries, Dirent { ino: Ino(o), kind: inode.kind, name }).is_ok() {
            attached += 1;
        }
    }
    if attached > 0 {
        write_dir(layout, lf_ino, &entries).await?;
    }
    Ok(attached)
}

/// Rewrites a directory's content from an entry list.
async fn write_dir<L: StorageLayout>(
    layout: &mut L,
    dir_ino: Ino,
    entries: &[Dirent],
) -> LResult<()> {
    let bytes = dir::encode(entries);
    let bs = BLOCK_SIZE as usize;
    let new_blocks = bytes.len().div_ceil(bs) as u64;
    let mut inode = layout.get_inode(dir_ino).await?;
    layout.truncate(&mut inode, new_blocks).await?;
    inode.size = bytes.len() as u64;
    if bytes.is_empty() {
        layout.put_inode(&inode).await?;
        return Ok(());
    }
    let blocks: Vec<(u64, Payload)> = (0..new_blocks)
        .map(|blk| {
            let lo = blk as usize * bs;
            let hi = (lo + bs).min(bytes.len());
            let mut block = vec![0u8; bs];
            block[..hi - lo].copy_from_slice(&bytes[lo..hi]);
            (blk, Payload::Data(block))
        })
        .collect();
    layout.write_file_blocks(&mut inode, blocks).await?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnp_disk::{sim_disk_driver, CLook, Hp97560};
    use cnp_layout::{
        FfsLayout, FfsParams, Layout, LfsLayout, LfsParams, SimGuessLayout, StorageLayout,
    };
    use cnp_sim::{Sim, SimTime};

    fn run_sim<F, Fut>(seed: u64, f: F)
    where
        F: FnOnce(cnp_sim::Handle) -> Fut + 'static,
        Fut: std::future::Future<Output = ()> + 'static,
    {
        let sim = Sim::new(seed);
        let h = sim.handle();
        let done = std::rc::Rc::new(std::cell::Cell::new(false));
        let done2 = done.clone();
        let h2 = h.clone();
        h.spawn("test", async move {
            f(h2).await;
            done2.set(true);
        });
        sim.run_until(SimTime::from_nanos(u64::MAX / 2));
        assert!(done.get(), "test body did not complete");
    }

    /// Builds a small populated tree directly at the layout level.
    async fn populate<L: StorageLayout>(layout: &mut L) {
        layout.format().await.unwrap();
        let now = 1u64;
        let mut sub = layout.alloc_ino(FileKind::Directory, now).unwrap();
        layout.put_inode(&sub).await.unwrap();
        let mut f1 = layout.alloc_ino(FileKind::Regular, now).unwrap();
        f1.size = 2 * BLOCK_SIZE as u64;
        layout
            .write_file_blocks(
                &mut f1,
                vec![
                    (0, Payload::Data(vec![1; BLOCK_SIZE as usize])),
                    (1, Payload::Data(vec![2; BLOCK_SIZE as usize])),
                ],
            )
            .await
            .unwrap();
        let mut f2 = layout.alloc_ino(FileKind::Regular, now).unwrap();
        f2.size = BLOCK_SIZE as u64;
        layout
            .write_file_blocks(&mut f2, vec![(0, Payload::Data(vec![3; BLOCK_SIZE as usize]))])
            .await
            .unwrap();
        // Root: {sub, a}; sub: {b}.
        write_dir(
            layout,
            Ino::ROOT,
            &[
                Dirent { ino: sub.ino, kind: FileKind::Directory, name: "sub".into() },
                Dirent { ino: f1.ino, kind: FileKind::Regular, name: "a".into() },
            ],
        )
        .await
        .unwrap();
        let sub_ino = sub.ino;
        sub = layout.get_inode(sub_ino).await.unwrap();
        let _ = &mut sub;
        write_dir(
            layout,
            sub_ino,
            &[Dirent { ino: f2.ino, kind: FileKind::Regular, name: "b".into() }],
        )
        .await
        .unwrap();
    }

    #[test]
    fn clean_tree_reports_clean_for_every_layout() {
        run_sim(51, |h| async move {
            // LFS.
            let d = sim_disk_driver(&h, "d0", Box::new(Hp97560::new()), Box::new(CLook));
            let mut lfs = Layout::Lfs(LfsLayout::new(&h, d.clone(), LfsParams::default()));
            populate(&mut lfs).await;
            let r = check(&mut lfs).await;
            assert!(r.clean(), "lfs: {:?}", r.violations);
            assert_eq!(r.dirs, 2);
            assert_eq!(r.files, 2);
            // FFS.
            let d2 = sim_disk_driver(&h, "d1", Box::new(Hp97560::new()), Box::new(CLook));
            let mut ffs = Layout::Ffs(FfsLayout::new(
                &h,
                d2.clone(),
                FfsParams { ninodes: 1024, ngroups: 4 },
            ));
            populate(&mut ffs).await;
            let r = check(&mut ffs).await;
            assert!(r.clean(), "ffs: {:?}", r.violations);
            // Sim-guess.
            use rand::SeedableRng;
            let d3 = sim_disk_driver(&h, "d2", Box::new(Hp97560::new()), Box::new(CLook));
            let mut sg = Layout::SimGuess(SimGuessLayout::new(
                d3.clone(),
                rand::rngs::StdRng::seed_from_u64(99),
            ));
            populate(&mut sg).await;
            let r = check(&mut sg).await;
            assert!(r.clean(), "sim-guess: {:?}", r.violations);
            d.shutdown();
            d2.shutdown();
            d3.shutdown();
        });
    }

    #[test]
    fn orphan_inode_is_attached_to_lost_and_found() {
        run_sim(57, |h| async move {
            let d = sim_disk_driver(&h, "d0", Box::new(Hp97560::new()), Box::new(CLook));
            let mut lfs = Layout::Lfs(LfsLayout::new(&h, d.clone(), LfsParams::default()));
            populate(&mut lfs).await;
            // An allocated file with data but no directory entry — what a
            // crash leaves when the dirent never became durable.
            let mut orphan = lfs.alloc_ino(FileKind::Regular, 9).unwrap();
            orphan.size = BLOCK_SIZE as u64;
            lfs.write_file_blocks(
                &mut orphan,
                vec![(0, Payload::Data(vec![0x42; BLOCK_SIZE as usize]))],
            )
            .await
            .unwrap();
            let orphan_ino = orphan.ino;
            let r = check(&mut lfs).await;
            assert!(r.clean(), "an orphan is a leak, not a violation: {:?}", r.violations);
            assert_eq!(r.orphans, vec![orphan_ino.0]);
            let (rep, fin) = repair(&mut lfs).await.unwrap();
            assert_eq!(rep.orphans_attached, 1);
            assert!(fin.clean(), "{:?}", fin.violations);
            assert!(fin.orphans.is_empty(), "adopted orphan still unreachable");
            // The orphan is now reachable under /lost+found with its data.
            let root = lfs.get_inode(Ino::ROOT).await.unwrap();
            let root_entries = read_dir(&mut lfs, &root).await.unwrap();
            let lf = dir::find(&root_entries, "lost+found").expect("lost+found created");
            assert_eq!(lf.kind, FileKind::Directory);
            let lf_inode = lfs.get_inode(lf.ino).await.unwrap();
            let lf_entries = read_dir(&mut lfs, &lf_inode).await.unwrap();
            let adopted = dir::find(&lf_entries, &format!("orphan-{}", orphan_ino.0))
                .expect("orphan adopted");
            assert_eq!(adopted.ino, orphan_ino);
            let got = lfs.get_inode(orphan_ino).await.unwrap();
            let p = lfs.read_file_block(&got, 0).await.unwrap().unwrap();
            assert_eq!(p.bytes().unwrap(), &vec![0x42u8; BLOCK_SIZE as usize][..]);
            // Re-running repair is idempotent: nothing new to adopt.
            let (rep2, _) = repair(&mut lfs).await.unwrap();
            assert_eq!(rep2.orphans_attached, 0);
            d.shutdown();
        });
    }

    #[test]
    fn dangling_dirent_is_found_and_repaired() {
        run_sim(53, |h| async move {
            let d = sim_disk_driver(&h, "d0", Box::new(Hp97560::new()), Box::new(CLook));
            let mut lfs = Layout::Lfs(LfsLayout::new(&h, d.clone(), LfsParams::default()));
            populate(&mut lfs).await;
            // Plant a dirent to a nonexistent inode.
            let root = lfs.get_inode(Ino::ROOT).await.unwrap();
            let mut entries = read_dir(&mut lfs, &root).await.unwrap();
            entries.push(Dirent { ino: Ino(4040), kind: FileKind::Regular, name: "ghost".into() });
            write_dir(&mut lfs, Ino::ROOT, &entries).await.unwrap();
            let r = check(&mut lfs).await;
            assert_eq!(r.violations.len(), 1);
            assert!(matches!(r.violations[0], Violation::DanglingDirent { .. }));
            let (rep, fin) = repair(&mut lfs).await.unwrap();
            assert_eq!(rep.entries_removed, 1);
            assert!(fin.clean(), "{:?}", fin.violations);
            // The healthy children survived the repair.
            let root = lfs.get_inode(Ino::ROOT).await.unwrap();
            let names: Vec<String> =
                read_dir(&mut lfs, &root).await.unwrap().into_iter().map(|e| e.name).collect();
            assert_eq!(names, vec!["sub", "a"]);
            d.shutdown();
        });
    }
}
