//! The file-system engine: abstract client interface over cache + layout.
//!
//! This is the cut-and-paste glue (§2): the *abstract client interface*
//! ("functions to open, close, read, write or delete a file and …
//! functions to manipulate an hierarchical name-space"), the global file
//! table, and the orchestration between the block cache's flush policies
//! and the storage layout. The same engine instantiates as Patsy
//! ([`DataMode::Simulated`], virtual clock) and as PFS
//! ([`DataMode::Real`], file-backed driver) — only configuration differs.

// RefMut-across-await in this module is deliberate: the engine runs on
// the cnp-sim executor, which is strictly single-threaded and
// cooperative, and every such borrow sits under the layout's core
// mutex, so no other task can reach the RefCell while the borrow is
// live. Scoped to this module so new cnp-core code elsewhere keeps the
// lint.
#![allow(clippy::await_holding_refcell_ref)]

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use cnp_cache::{
    flush_by_name_batched, replacement_by_name, BlockCache, BlockKey, DirtyOutcome, FileId, Reserve,
};
use cnp_disk::{DiskDriver, IoError, Payload};
use cnp_layout::dir::{self, Dirent};
use cnp_layout::{
    BlockAddr, FileKind, Ino, Inode, Layout, LayoutError, LayoutStats, StorageLayout, BLOCK_SIZE,
    MAX_FILE_BLOCKS,
};
use cnp_sim::{channel, Event, Handle, LockStats, Receiver, Sender, ShardedMutex, TrackedMutex};

use crate::config::{DataMode, FlushMode, FsConfig};
use crate::error::{FsError, FsResult};
use crate::history::{HistOp, HistOutcome, HistoryEvent, HistoryLog};
use crate::shard::ShardedTable;

/// Engine-level counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct FsStats {
    /// Client operations served.
    pub ops: u64,
    /// Read operations.
    pub reads: u64,
    /// Write operations.
    pub writes: u64,
    /// Create operations (files + directories + symlinks).
    pub creates: u64,
    /// Unlink/rmdir operations.
    pub deletes: u64,
    /// Bytes read by clients.
    pub bytes_read: u64,
    /// Bytes written by clients.
    pub bytes_written: u64,
    /// Dirty blocks absorbed (deleted/truncated before reaching disk).
    pub absorbed_blocks: u64,
    /// Flush batches executed.
    pub flush_batches: u64,
    /// Blocks flushed to the layout.
    pub blocks_flushed: u64,
    /// Flush batches that failed at the layout/disk (e.g. power cut).
    pub flush_errors: u64,
}

/// What a battery-backed (NVRAM) cache preserves across a crash: the
/// dirty blocks and the in-memory sizes of the files owning them.
///
/// Empty unless the cache was configured with an NVRAM bound — volatile
/// dirty data does not survive a power cut.
#[derive(Debug, Clone, Default)]
pub struct NvramSnapshot {
    /// Surviving dirty blocks: `(ino, file block index, bytes)`; bytes
    /// are `None` in simulated-payload mode.
    pub blocks: Vec<(u64, u64, Option<Vec<u8>>)>,
    /// Exact file sizes at capture for every file in `blocks`.
    pub sizes: Vec<(u64, u64)>,
}

impl NvramSnapshot {
    /// True if nothing survived (no NVRAM, or nothing was dirty).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

struct Shared {
    handle: Handle,
    cfg: FsConfig,
    cache: RefCell<BlockCache>,
    /// The layout core lock: held across *individual* layout calls on
    /// the hot paths (mapping, allocation, one flush's write batch) and
    /// across whole operations only on the cold control paths (format,
    /// mount, recover, sync, unmount). The LFS cleaner runs inside a
    /// `write_file_blocks` call and therefore holds this lock for its
    /// duration — the deliberate "global lock only for
    /// format/recover/cleaner" residue.
    layout: TrackedMutex<Layout>,
    /// Per-extent-range locks (striped by owning inode): serialize
    /// mutating extent sequences — allocation + inode persist, flush
    /// write-back, truncate, free — on the same file against each
    /// other, so the core lock above no longer has to be held across
    /// multi-call sequences. Cold paths take every stripe (ascending,
    /// the family's deadlock-free order) before the core lock.
    layout_ranges: ShardedMutex<()>,
    io: cnp_layout::BlockIo,
    driver: DiskDriver,
    inodes: ShardedTable<Ino, Rc<RefCell<Inode>>>,
    /// Per-inode count of completed size-relevant ops (writes,
    /// truncates). A failed write's speculative size extension may only
    /// roll back if nothing else completed in between — otherwise the
    /// rollback could clobber a concurrent client's acked extension to
    /// the same end.
    write_gen: RefCell<HashMap<Ino, u64>>,
    open_counts: RefCell<HashMap<Ino, u32>>,
    inflight: ShardedTable<BlockKey, Event>,
    /// Per-block failed-flush counts (bounded retry bookkeeping).
    flush_retry: RefCell<HashMap<BlockKey, u8>>,
    /// Serializes directory read-modify-write sequences, striped by the
    /// *parent directory* inode: clients mutating distinct directories
    /// (each sweep client owns its `/w<c>` shard) proceed past each
    /// other; two mutations of one directory still exclude. `rename`
    /// and `rmdir` need two directories and take `lock_pair`
    /// (ascending stripe order — deadlock-free).
    ns_lock: ShardedMutex<()>,
    flush_tx: RefCell<Option<Sender<Vec<BlockKey>>>>,
    flush_done: Event,
    shutdown: Cell<bool>,
    stats: RefCell<FsStats>,
}

/// Flush attempts per block before an erroring block is dropped.
const FLUSH_RETRIES: u8 = 3;

/// The instantiated file system (cloneable handle).
#[derive(Clone)]
pub struct FileSystem {
    s: Rc<Shared>,
}

impl FileSystem {
    /// Builds an engine over a layout; spawns the flush daemon and the
    /// flush policy's periodic scan task.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` names an unknown replacement or flush policy.
    pub fn new(handle: &Handle, layout: Layout, cfg: FsConfig) -> FileSystem {
        let frames = cfg.cache.frames();
        let replacement = replacement_by_name(&cfg.replacement, frames, handle.fork_rng())
            .unwrap_or_else(|| panic!("unknown replacement policy {}", cfg.replacement));
        // Demand-flush batches are sized to the I/O pipeline: one stall
        // selects queue_depth oldest-first groups and the layout issues
        // them as a concurrent scatter-gather batch.
        let flush = flush_by_name_batched(&cfg.flush, cfg.queue_depth as usize)
            .unwrap_or_else(|| panic!("unknown flush policy {}", cfg.flush));
        let shards = cfg.shards.max(1);
        let cache = BlockCache::with_shards(cfg.cache.clone(), replacement, flush, shards as usize);
        let driver = layout.driver().clone();
        // One knob drives the whole pipeline: the engine fans multi-block
        // operations out in windows of `queue_depth`, which builds the
        // scheduled driver queue. The *device* is capped at its native
        // queue depth — the 1996 SCSI disks hold two (enough to overlap
        // one command's bus phases with another's mechanics), a
        // multi-channel flash device absorbs 64+, a stripe the sum of
        // its children's — while the rest wait in the driver queue
        // where SSTF/SCAN/C-LOOK can actually reorder them (commands
        // already shipped to the disk are served in arrival order and
        // are beyond the scheduler's reach).
        driver.set_max_inflight(cfg.queue_depth.min(driver.native_depth()));
        let io = cnp_layout::BlockIo::new(driver.clone());
        let s = Rc::new(Shared {
            handle: handle.clone(),
            cfg,
            cache: RefCell::new(cache),
            layout: TrackedMutex::new(handle, layout),
            layout_ranges: ShardedMutex::new(handle, shards as usize, |_| ()),
            io,
            driver,
            inodes: ShardedTable::new(shards),
            write_gen: RefCell::new(HashMap::new()),
            open_counts: RefCell::new(HashMap::new()),
            inflight: ShardedTable::new(shards),
            flush_retry: RefCell::new(HashMap::new()),
            ns_lock: ShardedMutex::new(handle, shards as usize, |_| ()),
            flush_tx: RefCell::new(None),
            flush_done: Event::new(handle),
            shutdown: Cell::new(false),
            stats: RefCell::new(FsStats::default()),
        });
        let fs = FileSystem { s };
        fs.spawn_daemons();
        fs
    }

    fn spawn_daemons(&self) {
        let handle = self.s.handle.clone();
        if self.s.cfg.flush_mode == FlushMode::Async {
            let (tx, rx) = channel::<Vec<BlockKey>>(&handle);
            *self.s.flush_tx.borrow_mut() = Some(tx);
            let fs = self.clone();
            handle.spawn("fs:flush-daemon", async move {
                fs.flush_daemon(rx).await;
            });
        }
        // Periodic flush-policy scan (e.g. the 30-second-update timer).
        let interval = self.s.cache.borrow().tick_interval();
        if let Some(interval) = interval {
            let fs = self.clone();
            let h = handle.clone();
            handle.spawn("fs:update-daemon", async move {
                if cnp_obs::trace::enabled() {
                    let lane = cnp_obs::trace::engine_lane("update-daemon");
                    cnp_obs::trace::set_task_lane(h.task_key(), lane);
                }
                loop {
                    h.sleep(interval).await;
                    if fs.s.shutdown.get() {
                        break;
                    }
                    let keys = fs.s.cache.borrow_mut().tick(h.now());
                    if !keys.is_empty() {
                        fs.execute_or_enqueue(keys).await;
                    }
                }
            });
        }
    }

    async fn flush_daemon(&self, rx: Receiver<Vec<BlockKey>>) {
        if cnp_obs::trace::enabled() {
            let lane = cnp_obs::trace::engine_lane("flush-daemon");
            cnp_obs::trace::set_task_lane(self.s.handle.task_key(), lane);
        }
        while let Some(keys) = rx.recv().await {
            self.do_flush(keys).await;
            self.s.flush_done.signal();
        }
    }

    /// Stops background daemons (drains nothing; call after `unmount`).
    pub fn shutdown(&self) {
        self.s.shutdown.set(true);
        *self.s.flush_tx.borrow_mut() = None;
        self.s.flush_done.signal();
        self.s.driver.shutdown();
    }

    /// Simulation handle this engine runs on.
    pub fn handle(&self) -> &Handle {
        &self.s.handle
    }

    /// Engine counters.
    pub fn stats(&self) -> FsStats {
        *self.s.stats.borrow()
    }

    /// Cache counters.
    pub fn cache_stats(&self) -> cnp_cache::CacheStats {
        self.s.cache.borrow().stats()
    }

    /// Driver statistics (queue/service/rotation histograms).
    pub fn driver_stats(&self) -> cnp_disk::DriverStats {
        self.s.driver.stats()
    }

    /// Per-lock contention counters, by lock family: `ns` (namespace
    /// stripes, merged), `layout` (the core layout lock), and
    /// `layout-range` (extent-range stripes, merged). Wait time is
    /// simulated time tasks spent blocked acquiring; hold time is
    /// simulated time the lock was held.
    pub fn lock_stats(&self) -> Vec<(&'static str, LockStats)> {
        vec![
            ("ns", self.s.ns_lock.stats()),
            ("layout", self.s.layout.stats()),
            ("layout-range", self.s.layout_ranges.stats()),
        ]
    }

    /// Configured shard count for the interior locks and tables.
    pub fn shards(&self) -> u32 {
        self.s.cfg.shards.max(1)
    }

    /// Configured I/O pipeline depth — the bound a serving tier above
    /// the engine should admit concurrent requests against.
    pub fn queue_depth(&self) -> u32 {
        self.s.cfg.queue_depth.max(1)
    }

    /// Blocks handed to the flusher per dirtying client, ordered by
    /// client id. Engine-internal traffic (directories, symlink targets)
    /// and unattributed writes appear as [`cnp_cache::UNATTRIBUTED`].
    pub fn flushes_by_client(&self) -> Vec<(u32, u64)> {
        self.s.cache.borrow().flushes_by_client()
    }

    /// One [`cnp_obs::MetricsSnapshot`] absorbing every layer's native
    /// stats — engine counters, cache, lock families, driver
    /// histograms, layout, flush attribution — under namespaced keys
    /// (`fs.*`, `cache.*`, `lock.<family>.*`, `disk.*`, `layout.*`,
    /// `flush.*`). Sorted keys make the serialized bytes deterministic.
    pub fn metrics(&self) -> cnp_obs::MetricsSnapshot {
        let mut m = cnp_obs::MetricsSnapshot::new();
        let st = self.stats();
        m.counter("fs.ops", st.ops);
        m.counter("fs.reads", st.reads);
        m.counter("fs.writes", st.writes);
        m.counter("fs.creates", st.creates);
        m.counter("fs.deletes", st.deletes);
        m.counter("fs.bytes_read", st.bytes_read);
        m.counter("fs.bytes_written", st.bytes_written);
        m.counter("fs.absorbed_blocks", st.absorbed_blocks);
        m.counter("fs.flush_batches", st.flush_batches);
        m.counter("fs.blocks_flushed", st.blocks_flushed);
        m.counter("fs.flush_errors", st.flush_errors);
        let cs = self.cache_stats();
        m.counter("cache.hits", cs.hits);
        m.counter("cache.misses", cs.misses);
        m.gauge("cache.hit_rate", cs.hit_rate());
        m.counter("cache.insertions", cs.insertions);
        m.counter("cache.evictions", cs.evictions);
        m.counter("cache.dirtied", cs.dirtied);
        m.counter("cache.overwrites", cs.overwrites);
        m.counter("cache.absorbed", cs.absorbed);
        m.counter("cache.flushes", cs.flushes);
        m.counter("cache.nvram_stalls", cs.nvram_stalls);
        m.counter("cache.alloc_stalls", cs.alloc_stalls);
        for (family, ls) in self.lock_stats() {
            m.counter(&format!("lock.{family}.acquisitions"), ls.acquisitions);
            m.counter(&format!("lock.{family}.contentions"), ls.contentions);
            m.gauge(&format!("lock.{family}.wait_ms"), ls.wait.as_millis_f64());
            m.gauge(&format!("lock.{family}.hold_ms"), ls.hold.as_millis_f64());
            m.gauge(&format!("lock.{family}.max_wait_ms"), ls.max_wait.as_millis_f64());
        }
        let ds = self.driver_stats();
        m.counter("disk.completed", ds.completed);
        m.counter("disk.reads", ds.reads);
        m.counter("disk.writes", ds.writes);
        m.counter("disk.errors", ds.errors);
        m.counter("disk.retries", ds.retries);
        m.gauge("disk.mean_queue_len", ds.mean_queue_len);
        m.gauge("disk.max_queue_len", ds.max_queue_len);
        m.gauge("disk.mean_inflight", ds.mean_inflight);
        m.gauge("disk.overlap_fraction", ds.overlap_fraction);
        m.histogram("disk.queue_ms", &ds.queue_time);
        m.histogram("disk.service_ms", &ds.service_time);
        m.histogram("disk.rotation_ms", &ds.rotation_time);
        if let Some(ls) = self.layout_stats() {
            m.counter("layout.meta_reads", ls.meta_reads);
            m.counter("layout.meta_writes", ls.meta_writes);
            m.counter("layout.data_reads", ls.data_reads);
            m.counter("layout.data_writes", ls.data_writes);
            m.counter("layout.segments_written", ls.segments_written);
            m.counter("layout.segments_cleaned", ls.segments_cleaned);
            m.counter("layout.cleaner_moved", ls.cleaner_moved);
            m.counter("layout.checkpoints", ls.checkpoints);
        }
        let mut attributed = 0u64;
        let mut unattributed = 0u64;
        let mut clients = 0u64;
        for (id, n) in self.flushes_by_client() {
            if id == cnp_cache::UNATTRIBUTED {
                unattributed += n;
            } else {
                attributed += n;
                clients += 1;
            }
        }
        m.counter("flush.attributed_blocks", attributed);
        m.counter("flush.unattributed_blocks", unattributed);
        m.counter("flush.dirtying_clients", clients);
        m
    }

    /// A per-client handle onto this (shared) engine: the same file
    /// system, with write traffic attributed to `id`. Clients interleave
    /// at the engine's block-I/O await points under its interior locks —
    /// the namespace lock for directory read-modify-write, the layout
    /// mutex for mapping/allocation, and the in-flight table for
    /// duplicate block loads.
    ///
    /// `id` must not be [`cnp_cache::UNATTRIBUTED`] (`u32::MAX`) — that
    /// value is the engine-internal sentinel, and a client using it
    /// would silently merge into the unattributed flush bucket.
    pub fn client(&self, id: u32) -> ClientFs {
        debug_assert!(
            id != cnp_cache::UNATTRIBUTED,
            "client id {id} collides with the UNATTRIBUTED sentinel"
        );
        ClientFs { fs: self.clone(), id, history: None }
    }

    /// Layout statistics; `None` while the layout lock is held.
    pub fn layout_stats(&self) -> Option<LayoutStats> {
        self.s.layout.try_lock().map(|g| g.get().stats())
    }

    /// Installed policy names `(replacement, flush)`.
    pub fn policy_names(&self) -> (&'static str, &'static str) {
        self.s.cache.borrow().policy_names()
    }

    /// Formats the underlying layout (mkfs) and writes an empty root.
    pub async fn format(&self) -> FsResult<()> {
        let _all = self.s.layout_ranges.lock_all().await;
        let g = self.s.layout.lock().await;
        g.get_mut().format().await?;
        Ok(())
    }

    /// Mounts an existing file system.
    pub async fn mount(&self) -> FsResult<()> {
        let _all = self.s.layout_ranges.lock_all().await;
        let g = self.s.layout.lock().await;
        g.get_mut().mount().await?;
        Ok(())
    }

    /// Mounts after a crash, running the layout's recovery path (LFS
    /// checkpoint + roll-forward, FFS bitmap rebuild).
    pub async fn recover(&self) -> FsResult<cnp_layout::RecoveryStats> {
        let _all = self.s.layout_ranges.lock_all().await;
        let g = self.s.layout.lock().await;
        let stats = g.get_mut().recover().await?;
        Ok(stats)
    }

    /// Captures what survives a power cut in battery-backed cache RAM.
    ///
    /// Returns an empty snapshot unless the cache has an NVRAM bound:
    /// with volatile RAM, dirty data simply dies with the machine. The
    /// snapshot pairs each dirty block with its owner's exact in-memory
    /// size so a recovery harness can replay acknowledged writes.
    pub fn nvram_snapshot(&self) -> NvramSnapshot {
        if self.s.cfg.cache.nvram_bytes.is_none() {
            return NvramSnapshot::default();
        }
        let dirty = self.s.cache.borrow().dirty_snapshot();
        let mut blocks = Vec::with_capacity(dirty.len());
        let mut files: Vec<u64> = Vec::new();
        for (key, data) in dirty {
            if !files.contains(&key.file.0) {
                files.push(key.file.0);
            }
            blocks.push((key.file.0, key.block, data));
        }
        files.sort_unstable();
        let sizes = files
            .into_iter()
            .filter_map(|ino| {
                self.s.inodes.shard(ino).get(&Ino(ino)).map(|rc| (ino, rc.borrow().size))
            })
            .collect();
        NvramSnapshot { blocks, sizes }
    }

    /// Crash-recovery helper: re-establishes one cached block exactly
    /// as an NVRAM snapshot preserved it — real bytes when the snapshot
    /// has them (metadata is always real, even off-line), length-only
    /// otherwise — and dirties it so the next flush persists it.
    ///
    /// NVRAM replay must NOT route through [`FileSystem::write`]: in
    /// [`DataMode::Simulated`] the write path deliberately drops
    /// payload bytes, which would replace a battery-backed *directory*
    /// block with a simulated payload and destroy the namespace the
    /// snapshot was meant to restore.
    pub async fn restore_block(&self, ino: Ino, blk: u64, data: Option<Vec<u8>>) -> FsResult<()> {
        // Surface a dead identity as BadInode (the caller skips those).
        let _ = self.get_inode_rc(ino).await?;
        self.write_block_cached(cnp_cache::UNATTRIBUTED, ino, blk, data).await
    }

    /// Restores a file's logical size (crash-recovery helper: NVRAM
    /// snapshots carry exact sizes that may exceed what block-granular
    /// replay re-establishes). Never shrinks the file.
    pub async fn restore_size(&self, ino: Ino, size: u64) -> FsResult<()> {
        let rc = self.get_inode_rc(ino).await?;
        {
            let mut inode = rc.borrow_mut();
            if size <= inode.size {
                return Ok(());
            }
            inode.size = size;
        }
        let copy = rc.borrow().clone();
        let _rg = self.s.layout_ranges.lock(ino.0).await;
        let g = self.s.layout.lock().await;
        g.get_mut().put_inode(&copy).await?;
        Ok(())
    }

    /// Flushes everything and checkpoints the layout.
    pub async fn sync(&self) -> FsResult<()> {
        let dirty = self.s.cache.borrow().all_dirty();
        if !dirty.is_empty() {
            self.do_flush(dirty).await;
            self.s.flush_done.signal();
        }
        // Persist in-memory inodes (sizes may be newer than last flush).
        // Sorted: HashMap iteration order varies between instances (and
        // shard walk order groups by shard), and the put order shapes
        // the LFS log — replays must not depend on hasher state.
        let mut inos: Vec<Ino> = self.s.inodes.keys();
        inos.sort_unstable();
        let _all = self.s.layout_ranges.lock_all().await;
        let g = self.s.layout.lock().await;
        for ino in inos {
            let inode = self.s.inodes.shard(ino.0).get(&ino).map(|rc| rc.borrow().clone());
            if let Some(inode) = inode {
                match g.get_mut().put_inode(&inode).await {
                    Ok(()) | Err(LayoutError::BadInode(_)) => {}
                    Err(e) => return Err(e.into()),
                }
            }
        }
        g.get_mut().sync().await?;
        Ok(())
    }

    /// Syncs and unmounts.
    pub async fn unmount(&self) -> FsResult<()> {
        self.sync().await?;
        let _all = self.s.layout_ranges.lock_all().await;
        let g = self.s.layout.lock().await;
        g.get_mut().unmount().await?;
        Ok(())
    }

    // ----- Namespace operations (the abstract client interface) -----

    /// Resolves a path to an inode number.
    pub async fn lookup(&self, path: &str) -> FsResult<Ino> {
        self.op_begin().await;
        self.resolve(path).await
    }

    /// Creates a regular (or typed) file; returns its inode number.
    pub async fn create(&self, path: &str, kind: FileKind) -> FsResult<Ino> {
        self.op_begin().await;
        self.s.stats.borrow_mut().creates += 1;
        if kind == FileKind::Directory {
            return self.mkdir_inner(path).await;
        }
        // Resolve before locking: the stripe key is the parent
        // directory's inode. The entries re-read below happens under
        // the stripe, so the read-modify-write stays atomic per
        // directory; a racing remove of the parent surfaces as a clean
        // BadInode/NotFound.
        let (dir_ino, name) = self.resolve_parent(path).await?;
        let sp = self.s.handle.trace_span("lock:ns");
        let _ns = self.s.ns_lock.lock(dir_ino.0).await;
        self.s.handle.trace_exit(sp);
        let mut entries = self.read_dir_entries(dir_ino).await?;
        if dir::find(&entries, &name).is_some() {
            return Err(FsError::Exists(path.to_string()));
        }
        let inode = {
            let sp = self.s.handle.trace_span("lock:core");
            let g = self.s.layout.lock().await;
            self.s.handle.trace_exit(sp);
            let now = self.s.handle.now().as_nanos();
            let inode = g.get_mut().alloc_ino(kind, now)?;
            inode
        };
        let ino = inode.ino;
        self.s.inodes.shard_mut(ino.0).insert(ino, Rc::new(RefCell::new(inode.clone())));
        {
            let sp = self.s.handle.trace_span("lock:range");
            let _rg = self.s.layout_ranges.lock(ino.0).await;
            self.s.handle.trace_exit(sp);
            let sp = self.s.handle.trace_span("lock:core");
            let g = self.s.layout.lock().await;
            self.s.handle.trace_exit(sp);
            g.get_mut().put_inode(&inode).await?;
        }
        dir::add_entry(&mut entries, Dirent { ino, kind, name }).map_err(FsError::BadPath)?;
        self.write_dir_entries(dir_ino, &entries).await?;
        Ok(ino)
    }

    /// Creates a directory.
    pub async fn mkdir(&self, path: &str) -> FsResult<Ino> {
        self.op_begin().await;
        self.s.stats.borrow_mut().creates += 1;
        self.mkdir_inner(path).await
    }

    async fn mkdir_inner(&self, path: &str) -> FsResult<Ino> {
        let (dir_ino, name) = self.resolve_parent(path).await?;
        let sp = self.s.handle.trace_span("lock:ns");
        let _ns = self.s.ns_lock.lock(dir_ino.0).await;
        self.s.handle.trace_exit(sp);
        let mut entries = self.read_dir_entries(dir_ino).await?;
        if dir::find(&entries, &name).is_some() {
            return Err(FsError::Exists(path.to_string()));
        }
        let inode = {
            let sp = self.s.handle.trace_span("lock:core");
            let g = self.s.layout.lock().await;
            self.s.handle.trace_exit(sp);
            let now = self.s.handle.now().as_nanos();
            let inode = g.get_mut().alloc_ino(FileKind::Directory, now)?;
            g.get_mut().put_inode(&inode).await?;
            inode
        };
        let ino = inode.ino;
        self.s.inodes.shard_mut(ino.0).insert(ino, Rc::new(RefCell::new(inode)));
        dir::add_entry(&mut entries, Dirent { ino, kind: FileKind::Directory, name })
            .map_err(FsError::BadPath)?;
        self.write_dir_entries(dir_ino, &entries).await?;
        Ok(ino)
    }

    /// Lists a directory.
    pub async fn readdir(&self, path: &str) -> FsResult<Vec<Dirent>> {
        self.op_begin().await;
        let ino = self.resolve(path).await?;
        self.read_dir_entries(ino).await
    }

    /// Opens a file, bumping its open count; spawns the prefetch thread
    /// of multimedia ("active") files on first open.
    pub async fn open(&self, path: &str) -> FsResult<Ino> {
        self.op_begin().await;
        let ino = self.resolve(path).await?;
        let inode = self.get_inode_rc(ino).await?;
        let kind = inode.borrow().kind;
        let first_open = {
            let mut oc = self.s.open_counts.borrow_mut();
            let c = oc.entry(ino).or_insert(0);
            *c += 1;
            *c == 1
        };
        if first_open && kind == FileKind::Multimedia {
            let fs = self.clone();
            self.s.handle.spawn(&format!("mm-prefetch:{ino}"), async move {
                fs.multimedia_prefetch(ino).await;
            });
        }
        Ok(ino)
    }

    /// Closes an open file.
    pub async fn close(&self, ino: Ino) -> FsResult<()> {
        self.op_begin().await;
        let mut oc = self.s.open_counts.borrow_mut();
        if let Some(c) = oc.get_mut(&ino) {
            *c = c.saturating_sub(1);
            if *c == 0 {
                oc.remove(&ino);
            }
        }
        Ok(())
    }

    /// Stats a file by path.
    pub async fn stat(&self, path: &str) -> FsResult<Inode> {
        self.op_begin().await;
        let ino = self.resolve(path).await?;
        let rc = self.get_inode_rc(ino).await?;
        let inode = rc.borrow().clone();
        Ok(inode)
    }

    /// Stats a file by inode number — no path walk. This is the
    /// attribute path for handle-based front-ends (NFS fhandles): the
    /// caller already resolved the name once and holds the ino.
    pub async fn stat_ino(&self, ino: Ino) -> FsResult<Inode> {
        self.op_begin().await;
        let rc = self.get_inode_rc(ino).await?;
        let inode = rc.borrow().clone();
        Ok(inode)
    }

    /// Reads `len` bytes at `offset`; returns the bytes read (real mode)
    /// or the byte count only (simulated mode).
    pub async fn read(&self, ino: Ino, offset: u64, len: u64) -> FsResult<(u64, Option<Vec<u8>>)> {
        self.op_begin().await;
        {
            let mut st = self.s.stats.borrow_mut();
            st.reads += 1;
        }
        let rc = self.get_inode_rc(ino).await?;
        let size = rc.borrow().size;
        if offset >= size {
            return Ok((0, self.empty_data()));
        }
        let end = (offset + len).min(size);
        if end == offset {
            return Ok((0, self.empty_data()));
        }
        let bs = BLOCK_SIZE as u64;
        let mut out: Option<Vec<u8>> = match self.s.cfg.data_mode {
            DataMode::Real => Some(Vec::with_capacity((end - offset) as usize)),
            DataMode::Simulated => None,
        };
        let first = offset / bs;
        let last = (end - 1) / bs;
        if self.s.cfg.queue_depth > 1 && last > first {
            // Pipelined path: map the range as extents and keep up to
            // queue_depth block loads in flight at once.
            let datas = self.read_blocks_pipelined(ino, first, last + 1 - first).await?;
            for (i, data) in datas.iter().enumerate() {
                let blk = first + i as u64;
                let lo = if blk == first { (offset % bs) as usize } else { 0 };
                let hi = ((end - blk * bs).min(bs)) as usize;
                if let (Some(out), Some(data)) = (out.as_mut(), data.as_ref()) {
                    out.extend_from_slice(&data[lo..hi]);
                }
            }
        } else {
            let mut pos = offset;
            while pos < end {
                let blk = pos / bs;
                let lo = (pos % bs) as usize;
                let hi = ((end - blk * bs).min(bs)) as usize;
                let data = self.read_block_cached(ino, blk).await?;
                if let (Some(out), Some(data)) = (out.as_mut(), data.as_ref()) {
                    out.extend_from_slice(&data[lo..hi]);
                }
                pos = blk * bs + hi as u64;
            }
        }
        self.s.stats.borrow_mut().bytes_read += end - offset;
        Ok((end - offset, out))
    }

    /// Writes `len` bytes at `offset` (data may be `None` off-line).
    pub async fn write(
        &self,
        ino: Ino,
        offset: u64,
        len: u64,
        data: Option<&[u8]>,
    ) -> FsResult<u64> {
        self.write_for(cnp_cache::UNATTRIBUTED, ino, offset, len, data).await
    }

    /// [`FileSystem::write`] attributed to a client: the dirty blocks
    /// this write leaves behind are charged to `client` in the cache's
    /// flush accounting ([`FileSystem::flushes_by_client`]). The
    /// multi-client handle ([`FileSystem::client`]) routes here.
    pub async fn write_for(
        &self,
        client: u32,
        ino: Ino,
        offset: u64,
        len: u64,
        data: Option<&[u8]>,
    ) -> FsResult<u64> {
        self.op_begin().await;
        {
            let mut st = self.s.stats.borrow_mut();
            st.writes += 1;
        }
        let bs = BLOCK_SIZE as u64;
        let end = offset + len;
        if end.div_ceil(bs) > MAX_FILE_BLOCKS {
            return Err(FsError::TooBig);
        }
        let rc = self.get_inode_rc(ino).await?;
        let old_size = rc.borrow().size;
        // Extend the size *before* dirtying any block: a cache under
        // NVRAM pressure (its own, or another client's on the shared
        // engine) may flush this file's blocks mid-write, and the
        // flushed inode must already cover them — otherwise the write
        // acks with its data durable but unreachable behind a stale
        // size, and a later crash loses it (caught by the multi-client
        // crash test). `plant_stale_size_bug` reintroduces the broken
        // ordering so the crash-point enumerator can prove it catches
        // this bug class.
        if len > 0 && end > old_size && !self.s.cfg.plant_stale_size_bug {
            rc.borrow_mut().size = end;
        }
        let gen0 = self.s.write_gen.borrow().get(&ino).copied().unwrap_or(0);
        let first = offset / bs;
        let last = if len == 0 { first } else { (end - 1) / bs };
        let mut failed: Option<FsError> = None;
        if len > 0 && self.s.cfg.queue_depth > 1 && last > first {
            // Pipelined path: per-block cache commits (and any
            // read-modify loads for partial blocks) proceed with up to
            // queue_depth in flight.
            let work = (first..=last)
                .map(|blk| self.write_one_block(client, ino, blk, offset, end, old_size, data));
            for r in cnp_sim::for_each_limit(self.s.cfg.queue_depth as usize, work).await {
                if let Err(e) = r {
                    failed = Some(e);
                    break;
                }
            }
        } else {
            let mut pos = offset;
            while pos < end {
                let blk = pos / bs;
                let hi = ((end - blk * bs).min(bs)) as usize;
                if let Err(e) =
                    self.write_one_block(client, ino, blk, offset, end, old_size, data).await
                {
                    failed = Some(e);
                    break;
                }
                pos = blk * bs + hi as u64;
            }
        }
        if let Some(e) = failed {
            // Roll the speculative extension back so a *failed* write
            // does not leave a phantom size — but only if no other
            // size-relevant op completed meanwhile: a concurrent client
            // acking a write to the same `end` must keep its coverage.
            let untouched = self.s.write_gen.borrow().get(&ino).copied().unwrap_or(0) == gen0;
            let mut inode = rc.borrow_mut();
            if end > old_size && inode.size == end && untouched {
                inode.size = old_size;
            }
            return Err(e);
        }
        {
            let mut inode = rc.borrow_mut();
            if end > inode.size {
                inode.size = end;
            }
            inode.mtime = self.s.handle.now().as_nanos();
        }
        *self.s.write_gen.borrow_mut().entry(ino).or_insert(0) += 1;
        self.s.stats.borrow_mut().bytes_written += len;
        Ok(len)
    }

    /// Truncates a file to `new_size` bytes.
    pub async fn truncate(&self, ino: Ino, new_size: u64) -> FsResult<()> {
        self.op_begin().await;
        let rc = self.get_inode_rc(ino).await?;
        let old_blocks = rc.borrow().blocks();
        let new_blocks = new_size.div_ceil(BLOCK_SIZE as u64);
        // Dirty blocks beyond the new size die in cache: write absorption.
        for blk in new_blocks..old_blocks {
            self.s.cache.borrow_mut().remove_block(BlockKey::new(FileId(ino.0), blk));
        }
        {
            let sp = self.s.handle.trace_span("lock:range");
            let _rg = self.s.layout_ranges.lock(ino.0).await;
            self.s.handle.trace_exit(sp);
            let sp = self.s.handle.trace_span("lock:core");
            let g = self.s.layout.lock().await;
            self.s.handle.trace_exit(sp);
            let mut copy = rc.borrow().clone();
            g.get_mut().truncate(&mut copy, new_blocks).await?;
            let mut inode = rc.borrow_mut();
            inode.direct = copy.direct;
            inode.indirect = copy.indirect;
            inode.size = new_size;
        }
        *self.s.write_gen.borrow_mut().entry(ino).or_insert(0) += 1;
        Ok(())
    }

    /// Removes a file; dirty cached blocks are absorbed, never written.
    pub async fn unlink(&self, path: &str) -> FsResult<()> {
        self.op_begin().await;
        self.s.stats.borrow_mut().deletes += 1;
        let (dir_ino, name) = self.resolve_parent(path).await?;
        let sp = self.s.handle.trace_span("lock:ns");
        let _ns = self.s.ns_lock.lock(dir_ino.0).await;
        self.s.handle.trace_exit(sp);
        let mut entries = self.read_dir_entries(dir_ino).await?;
        let entry = dir::remove_entry(&mut entries, &name)
            .ok_or_else(|| FsError::NotFound(path.to_string()))?;
        if entry.kind == FileKind::Directory {
            return Err(FsError::IsADirectory(path.to_string()));
        }
        self.write_dir_entries(dir_ino, &entries).await?;
        let absorbed = self.s.cache.borrow_mut().remove_file(FileId(entry.ino.0));
        self.s.stats.borrow_mut().absorbed_blocks += absorbed;
        self.s.inodes.shard_mut(entry.ino.0).remove(&entry.ino);
        self.s.write_gen.borrow_mut().remove(&entry.ino);
        let sp = self.s.handle.trace_span("lock:range");
        let _rg = self.s.layout_ranges.lock(entry.ino.0).await;
        self.s.handle.trace_exit(sp);
        let sp = self.s.handle.trace_span("lock:core");
        let g = self.s.layout.lock().await;
        self.s.handle.trace_exit(sp);
        g.get_mut().free_inode(entry.ino).await?;
        Ok(())
    }

    /// Removes an empty directory.
    pub async fn rmdir(&self, path: &str) -> FsResult<()> {
        self.op_begin().await;
        self.s.stats.borrow_mut().deletes += 1;
        let (dir_ino, name) = self.resolve_parent(path).await?;
        // The victim's stripe must be held too: its emptiness check has
        // to exclude a concurrent create *inside* the victim, which
        // holds only the victim's stripe. The victim ino is discovered
        // by an unlocked probe, then both stripes are taken in the
        // family's deadlock-free order and the lookup revalidated.
        loop {
            let probe = {
                let entries = self.read_dir_entries(dir_ino).await?;
                dir::find(&entries, &name).cloned()
            };
            let victim = probe.ok_or_else(|| FsError::NotFound(path.to_string()))?;
            let sp = self.s.handle.trace_span("lock:ns");
            let _ns = self.s.ns_lock.lock_pair(dir_ino.0, victim.ino.0).await;
            self.s.handle.trace_exit(sp);
            let mut entries = self.read_dir_entries(dir_ino).await?;
            let entry = dir::find(&entries, &name)
                .ok_or_else(|| FsError::NotFound(path.to_string()))?
                .clone();
            if entry.ino != victim.ino {
                // Raced: the name now points at a different inode, so
                // the held victim stripe is the wrong one. Re-probe.
                continue;
            }
            if entry.kind != FileKind::Directory {
                return Err(FsError::NotADirectory(path.to_string()));
            }
            if !self.read_dir_entries(entry.ino).await?.is_empty() {
                return Err(FsError::NotEmpty(path.to_string()));
            }
            dir::remove_entry(&mut entries, &name);
            self.write_dir_entries(dir_ino, &entries).await?;
            let absorbed = self.s.cache.borrow_mut().remove_file(FileId(entry.ino.0));
            self.s.stats.borrow_mut().absorbed_blocks += absorbed;
            self.s.inodes.shard_mut(entry.ino.0).remove(&entry.ino);
            let sp = self.s.handle.trace_span("lock:range");
            let _rg = self.s.layout_ranges.lock(entry.ino.0).await;
            self.s.handle.trace_exit(sp);
            let sp = self.s.handle.trace_span("lock:core");
            let g = self.s.layout.lock().await;
            self.s.handle.trace_exit(sp);
            g.get_mut().free_inode(entry.ino).await?;
            return Ok(());
        }
    }

    /// Renames a file or directory (same-parent and cross-parent).
    pub async fn rename(&self, from: &str, to: &str) -> FsResult<()> {
        self.op_begin().await;
        let (from_dir, from_name) = self.resolve_parent(from).await?;
        let (to_dir, to_name) = self.resolve_parent(to).await?;
        let sp = self.s.handle.trace_span("lock:ns");
        let _ns = self.s.ns_lock.lock_pair(from_dir.0, to_dir.0).await;
        self.s.handle.trace_exit(sp);
        if !dir::valid_name(&to_name) {
            return Err(FsError::BadPath(to.to_string()));
        }
        let mut from_entries = self.read_dir_entries(from_dir).await?;
        let entry = dir::remove_entry(&mut from_entries, &from_name)
            .ok_or_else(|| FsError::NotFound(from.to_string()))?;
        if from_dir == to_dir {
            if dir::find(&from_entries, &to_name).is_some() {
                return Err(FsError::Exists(to.to_string()));
            }
            dir::add_entry(
                &mut from_entries,
                Dirent { ino: entry.ino, kind: entry.kind, name: to_name },
            )
            .map_err(FsError::BadPath)?;
            self.write_dir_entries(from_dir, &from_entries).await?;
        } else {
            let mut to_entries = self.read_dir_entries(to_dir).await?;
            if dir::find(&to_entries, &to_name).is_some() {
                return Err(FsError::Exists(to.to_string()));
            }
            dir::add_entry(
                &mut to_entries,
                Dirent { ino: entry.ino, kind: entry.kind, name: to_name },
            )
            .map_err(FsError::BadPath)?;
            self.write_dir_entries(from_dir, &from_entries).await?;
            self.write_dir_entries(to_dir, &to_entries).await?;
        }
        Ok(())
    }

    /// Creates a symbolic link holding `target`.
    pub async fn symlink(&self, path: &str, target: &str) -> FsResult<Ino> {
        let ino = self.create(path, FileKind::Symlink).await?;
        let bytes = target.as_bytes().to_vec();
        let len = bytes.len() as u64;
        let data = match self.s.cfg.data_mode {
            DataMode::Real => Some(bytes),
            // Symlink targets are metadata: always real.
            DataMode::Simulated => Some(bytes_padded(target)),
        };
        self.write(ino, 0, len, data.as_deref()).await?;
        Ok(ino)
    }

    /// Reads a symlink's target.
    pub async fn readlink(&self, path: &str) -> FsResult<String> {
        self.op_begin().await;
        let ino = self.resolve(path).await?;
        let rc = self.get_inode_rc(ino).await?;
        let (kind, size) = {
            let i = rc.borrow();
            (i.kind, i.size)
        };
        if kind != FileKind::Symlink {
            return Err(FsError::BadPath(path.to_string()));
        }
        let data = self.read_block_cached(ino, 0).await?;
        match data {
            Some(bytes) => {
                let target = &bytes[..(size as usize).min(bytes.len())];
                String::from_utf8(target.to_vec()).map_err(|e| FsError::BadPath(e.to_string()))
            }
            None => Err(FsError::BadPath("symlink content unavailable".into())),
        }
    }

    // ----- Internals -----

    fn empty_data(&self) -> Option<Vec<u8>> {
        match self.s.cfg.data_mode {
            DataMode::Real => Some(Vec::new()),
            DataMode::Simulated => None,
        }
    }

    async fn op_begin(&self) {
        self.s.stats.borrow_mut().ops += 1;
        if !self.s.cfg.op_overhead.is_zero() {
            self.s.handle.sleep(self.s.cfg.op_overhead).await;
        }
    }

    async fn resolve(&self, path: &str) -> FsResult<Ino> {
        let parts = split_path(path)?;
        let mut cur = Ino::ROOT;
        for part in parts {
            let entries = self.read_dir_entries(cur).await?;
            let e =
                dir::find(&entries, &part).ok_or_else(|| FsError::NotFound(path.to_string()))?;
            cur = e.ino;
        }
        Ok(cur)
    }

    async fn resolve_parent(&self, path: &str) -> FsResult<(Ino, String)> {
        let mut parts = split_path(path)?;
        let name = parts.pop().ok_or_else(|| FsError::BadPath(path.to_string()))?;
        if !dir::valid_name(&name) {
            return Err(FsError::BadPath(path.to_string()));
        }
        let mut cur = Ino::ROOT;
        for part in parts {
            let entries = self.read_dir_entries(cur).await?;
            let e =
                dir::find(&entries, &part).ok_or_else(|| FsError::NotFound(path.to_string()))?;
            if e.kind != FileKind::Directory {
                return Err(FsError::NotADirectory(path.to_string()));
            }
            cur = e.ino;
        }
        Ok((cur, name))
    }

    async fn get_inode_rc(&self, ino: Ino) -> FsResult<Rc<RefCell<Inode>>> {
        if let Some(rc) = self.s.inodes.shard(ino.0).get(&ino) {
            return Ok(rc.clone());
        }
        let inode = {
            let g = self.s.layout.lock().await;
            let inode = g.get_mut().get_inode(ino).await?;
            inode
        };
        let rc = Rc::new(RefCell::new(inode));
        let mut shard = self.s.inodes.shard_mut(ino.0);
        Ok(shard.entry(ino).or_insert_with(|| rc.clone()).clone())
    }

    async fn read_dir_entries(&self, ino: Ino) -> FsResult<Vec<Dirent>> {
        let rc = self.get_inode_rc(ino).await?;
        let (kind, size) = {
            let i = rc.borrow();
            (i.kind, i.size)
        };
        if kind != FileKind::Directory {
            return Err(FsError::NotADirectory(format!("{ino}")));
        }
        let blocks = size.div_ceil(BLOCK_SIZE as u64);
        let mut bytes = Vec::with_capacity(size as usize);
        for blk in 0..blocks {
            let data = self.read_block_cached(ino, blk).await?.ok_or_else(|| {
                FsError::Layout(LayoutError::Corrupt("directory data unavailable".into()))
            })?;
            bytes.extend_from_slice(&data);
        }
        bytes.truncate(size as usize);
        dir::decode(&bytes).map_err(|e| FsError::Layout(LayoutError::Corrupt(e)))
    }

    async fn write_dir_entries(&self, ino: Ino, entries: &[Dirent]) -> FsResult<()> {
        let bytes = dir::encode(entries);
        let rc = self.get_inode_rc(ino).await?;
        let old_blocks = rc.borrow().blocks();
        let bs = BLOCK_SIZE as usize;
        let new_blocks = bytes.len().div_ceil(bs) as u64;
        // Extend the size *before* dirtying any block — the directory
        // twin of the stale-size write race: a mid-update NVRAM
        // pressure flush (e.g. another client's) snapshots the inode
        // while its dirty content block is already selected, and a
        // stale size makes the acked dirent durable but unreachable
        // after a crash (found by cnp-check's crash-point enumeration
        // on the zipf multi-client workload).
        if bytes.len() as u64 > rc.borrow().size {
            rc.borrow_mut().size = bytes.len() as u64;
        }
        for blk in 0..new_blocks {
            let lo = blk as usize * bs;
            let hi = (lo + bs).min(bytes.len());
            let mut block = vec![0u8; bs];
            block[..hi - lo].copy_from_slice(&bytes[lo..hi]);
            // Directory content is metadata: always real bytes.
            self.write_block_cached(cnp_cache::UNATTRIBUTED, ino, blk, Some(block)).await?;
        }
        {
            let mut inode = rc.borrow_mut();
            inode.size = bytes.len() as u64;
            inode.mtime = self.s.handle.now().as_nanos();
        }
        for blk in new_blocks..old_blocks {
            self.s.cache.borrow_mut().remove_block(BlockKey::new(FileId(ino.0), blk));
        }
        if new_blocks < old_blocks {
            let g = self.s.layout.lock().await;
            let mut copy = rc.borrow().clone();
            g.get_mut().truncate(&mut copy, new_blocks).await?;
            let mut inode = rc.borrow_mut();
            inode.direct = copy.direct;
            inode.indirect = copy.indirect;
        }
        Ok(())
    }

    /// One block of a client write: compute the block's new content
    /// (read-modify for partial overwrites in real mode) and push it
    /// through the cache. Shared by the lock-step and pipelined paths.
    #[allow(clippy::too_many_arguments)]
    async fn write_one_block(
        &self,
        owner: u32,
        ino: Ino,
        blk: u64,
        offset: u64,
        end: u64,
        old_size: u64,
        data: Option<&[u8]>,
    ) -> FsResult<()> {
        let bs = BLOCK_SIZE as u64;
        let lo = if blk * bs >= offset { 0 } else { (offset % bs) as usize };
        let hi = ((end - blk * bs).min(bs)) as usize;
        let whole = lo == 0 && hi == bs as usize;
        let block_data: Option<Vec<u8>> = match self.s.cfg.data_mode {
            DataMode::Simulated => None,
            DataMode::Real => {
                let mut base = if whole || blk * bs >= old_size {
                    vec![0u8; bs as usize]
                } else {
                    // Partial overwrite of existing data: read-modify.
                    self.read_block_cached(ino, blk)
                        .await?
                        .unwrap_or_else(|| vec![0u8; bs as usize])
                };
                if let Some(src) = data {
                    let src_lo = (blk * bs + lo as u64 - offset) as usize;
                    let n = hi - lo;
                    let avail = src.len().saturating_sub(src_lo).min(n);
                    base[lo..lo + avail].copy_from_slice(&src[src_lo..src_lo + avail]);
                }
                Some(base)
            }
        };
        self.write_block_cached(owner, ino, blk, block_data).await
    }

    /// Pipelined multi-block read: classify each block (cache hit, load
    /// in flight elsewhere, ours to load), map our misses to physical
    /// runs with **one** `map_extents` call per window under the layout
    /// lock, then scatter-gather the runs concurrently. The window size
    /// is the queue-depth knob, which also bounds reserved cache frames.
    ///
    /// Returns one entry per block in `[first, first + n)`: bytes when
    /// available (real mode / metadata), `None` for simulated payloads.
    async fn read_blocks_pipelined(
        &self,
        ino: Ino,
        first: u64,
        n: u64,
    ) -> FsResult<Vec<Option<Vec<u8>>>> {
        let window = self.s.cfg.queue_depth.max(1) as u64;
        let mut out: Vec<Option<Vec<u8>>> = Vec::with_capacity(n as usize);
        let mut start = first;
        while start < first + n {
            let len = window.min(first + n - start);
            let charged = self.read_window(ino, start, len, &mut out).await?;
            // Copy cost is CPU work: charge it per delivered block,
            // serially, as the lock-step path does (blocks loaded by a
            // concurrent task were already charged inside the wait).
            for _ in 0..len - charged {
                self.copy_delay().await;
            }
            start += len;
        }
        Ok(out)
    }

    /// One queue-depth window of [`FileSystem::read_blocks_pipelined`];
    /// appends the window's block data to `out`. Returns how many blocks
    /// already paid their copy cost (loads delegated to another task).
    async fn read_window(
        &self,
        ino: Ino,
        start: u64,
        len: u64,
        out: &mut Vec<Option<Vec<u8>>>,
    ) -> FsResult<u64> {
        let base = out.len();
        out.resize(base + len as usize, None);
        // Classify: cache hits fill immediately; blocks being loaded by
        // another task are awaited at the end; the rest are ours.
        let mut ours: Vec<(usize, u64, u32, Event)> = Vec::new(); // (slot, blk, frame, event)
        let mut theirs: Vec<(usize, u64)> = Vec::new();
        let mut filled: Vec<bool> = vec![false; len as usize];
        for i in 0..len {
            let blk = start + i;
            let key = BlockKey::new(FileId(ino.0), blk);
            {
                let mut cache = self.s.cache.borrow_mut();
                if let Some(frame) = cache.lookup(key, self.s.handle.now()) {
                    out[base + i as usize] = cache.data(frame).map(|d| d.to_vec());
                    filled[i as usize] = true;
                    continue;
                }
            }
            if self.s.inflight.shard(key.shard_image()).contains_key(&key) {
                theirs.push((i as usize, blk));
                continue;
            }
            let ev = Event::new(&self.s.handle);
            self.s.inflight.shard_mut(key.shard_image()).insert(key, ev.clone());
            match self.reserve_frame().await {
                Ok(frame) => ours.push((i as usize, blk, frame, ev)),
                Err(e) => {
                    self.s.inflight.shard_mut(key.shard_image()).remove(&key);
                    ev.signal();
                    self.abort_window(ino, &ours);
                    return Err(e);
                }
            }
        }
        // Map our misses to physical runs, one lock acquisition per
        // contiguous range, consulting the layout's staging buffer.
        let mut addrs: Vec<Option<BlockAddr>> = Vec::with_capacity(ours.len()); // per `ours` entry
        if !ours.is_empty() {
            let inode = match self.get_inode_rc(ino).await {
                Ok(rc) => rc.borrow().clone(),
                Err(e) => {
                    self.abort_window(ino, &ours);
                    return Err(e);
                }
            };
            let g = self.s.layout.lock().await;
            let mut k = 0usize;
            while k < ours.len() {
                let run_start = ours[k].1;
                let mut run_len = 1u64;
                while k + (run_len as usize) < ours.len()
                    && ours[k + run_len as usize].1 == run_start + run_len
                {
                    run_len += 1;
                }
                let mapped = g.get_mut().map_extents(&inode, run_start, run_len).await;
                let extents = match mapped {
                    Ok(ex) => ex,
                    Err(e) => {
                        // Nothing is committed yet: release every miss.
                        drop(g);
                        self.abort_window(ino, &ours);
                        return Err(e.into());
                    }
                };
                for e in &extents {
                    for off in 0..e.len as u64 {
                        addrs.push(e.addr.map(|a| BlockAddr(a.0 + off)));
                    }
                }
                k += run_len as usize;
            }
            // Staged blocks (LFS unflushed segment) are served from the
            // layout's buffer, never the device.
            for (idx, &(slot, blk, frame, ref ev)) in ours.iter().enumerate() {
                if let Some(addr) = addrs[idx] {
                    if let Some(p) = g.get().staged_block(addr) {
                        let data = p.bytes().map(|b| b.to_vec());
                        let key = BlockKey::new(FileId(ino.0), blk);
                        self.s.cache.borrow_mut().commit(
                            frame,
                            key,
                            data.clone(),
                            self.s.handle.now(),
                        );
                        out[base + slot] = data;
                        filled[slot] = true;
                        self.s.inflight.shard_mut(key.shard_image()).remove(&key);
                        ev.signal();
                        addrs[idx] = None; // Done: not a device read.
                    }
                }
            }
        }
        // Scatter-gather the remaining device reads as physical runs.
        let mut pending: Vec<usize> = Vec::new(); // indices into `ours`
        let mut extents: Vec<cnp_layout::Extent> = Vec::new();
        for (idx, &(slot, _blk, _frame, _)) in ours.iter().enumerate() {
            if filled[slot] {
                continue;
            }
            match addrs[idx] {
                Some(addr) => {
                    pending.push(idx);
                    let extend = extents
                        .last()
                        .and_then(|e| e.addr)
                        .map(|a| {
                            let last = extents.last().expect("just found");
                            a.0 + last.len as u64 == addr.0
                                && last.start_blk + last.len as u64 == ours[idx].1
                        })
                        .unwrap_or(false);
                    if extend {
                        extents.last_mut().expect("checked").len += 1;
                    } else {
                        extents.push(cnp_layout::Extent {
                            start_blk: ours[idx].1,
                            len: 1,
                            addr: Some(addr),
                        });
                    }
                }
                None => {
                    // A hole reads as zeroes on-line, nothing off-line.
                    let data = match self.s.cfg.data_mode {
                        DataMode::Real => Some(vec![0u8; BLOCK_SIZE as usize]),
                        DataMode::Simulated => None,
                    };
                    let (slot, blk, frame, ev) =
                        (ours[idx].0, ours[idx].1, ours[idx].2, &ours[idx].3);
                    let key = BlockKey::new(FileId(ino.0), blk);
                    self.s.cache.borrow_mut().commit(frame, key, data.clone(), self.s.handle.now());
                    out[base + slot] = data;
                    filled[slot] = true;
                    self.s.inflight.shard_mut(key.shard_image()).remove(&key);
                    ev.signal();
                }
            }
        }
        if !extents.is_empty() {
            match self.s.io.read_extents(&extents).await {
                Ok(payloads) => {
                    let mut p = 0usize; // index into pending
                    for (e, payload) in extents.iter().zip(payloads) {
                        let payload = payload.expect("mapped extent has a payload");
                        for off in 0..e.len as usize {
                            let idx = pending[p];
                            p += 1;
                            let (slot, blk, frame, ev) =
                                (ours[idx].0, ours[idx].1, ours[idx].2, &ours[idx].3);
                            let data = match payload.bytes() {
                                Some(_) => Some(cnp_layout::BlockIo::block_bytes(&payload, off)?),
                                None => None,
                            };
                            let key = BlockKey::new(FileId(ino.0), blk);
                            self.s.cache.borrow_mut().commit(
                                frame,
                                key,
                                data.clone(),
                                self.s.handle.now(),
                            );
                            out[base + slot] = data;
                            filled[slot] = true;
                            self.s.inflight.shard_mut(key.shard_image()).remove(&key);
                            ev.signal();
                        }
                    }
                }
                Err(e) => {
                    let leftover: Vec<_> = pending.iter().map(|&idx| ours[idx].clone()).collect();
                    self.abort_window(ino, &leftover);
                    return Err(e.into());
                }
            }
        }
        // Blocks another task was loading: read through the cache (the
        // wait-and-retry loop — and its copy charge — live there).
        let charged = theirs.len() as u64;
        for (slot, blk) in theirs {
            out[base + slot] = self.read_block_cached(ino, blk).await?;
        }
        Ok(charged)
    }

    /// Releases the frames and in-flight markers of not-yet-committed
    /// window entries after an error.
    fn abort_window(&self, ino: Ino, entries: &[(usize, u64, u32, Event)]) {
        for (_slot, blk, frame, ev) in entries {
            let key = BlockKey::new(FileId(ino.0), *blk);
            self.s.cache.borrow_mut().release_reserved(*frame);
            self.s.inflight.shard_mut(key.shard_image()).remove(&key);
            ev.signal();
        }
    }

    /// Reads one block through the cache; returns bytes when available
    /// (always for metadata, never for off-line user data).
    async fn read_block_cached(&self, ino: Ino, blk: u64) -> FsResult<Option<Vec<u8>>> {
        let key = BlockKey::new(FileId(ino.0), blk);
        loop {
            // Hit?
            {
                let mut cache = self.s.cache.borrow_mut();
                if let Some(frame) = cache.lookup(key, self.s.handle.now()) {
                    let data = cache.data(frame).map(|d| d.to_vec());
                    drop(cache);
                    self.s.handle.trace_instant("cache:hit");
                    self.copy_delay().await;
                    return Ok(data);
                }
            }
            // Miss: dedup concurrent loads of the same block.
            let waiter = self.s.inflight.shard(key.shard_image()).get(&key).cloned();
            if let Some(ev) = waiter {
                ev.wait().await;
                continue;
            }
            self.s.handle.trace_instant("cache:miss");
            let ev = Event::new(&self.s.handle);
            self.s.inflight.shard_mut(key.shard_image()).insert(key, ev.clone());
            let sp = self.s.handle.trace_span("cache:load");
            let result = self.load_block(ino, blk, key).await;
            self.s.handle.trace_exit(sp);
            self.s.inflight.shard_mut(key.shard_image()).remove(&key);
            ev.signal();
            match result {
                Ok(data) => {
                    self.copy_delay().await;
                    return Ok(data);
                }
                Err(e) => return Err(e),
            }
        }
    }

    async fn load_block(&self, ino: Ino, blk: u64, key: BlockKey) -> FsResult<Option<Vec<u8>>> {
        let frame = self.reserve_frame().await?;
        // Map under the layout lock; read the data outside it so
        // independent reads queue up at the disk concurrently.
        let addr: Option<BlockAddr> = {
            let rc = match self.get_inode_rc(ino).await {
                Ok(rc) => rc,
                Err(e) => {
                    self.s.cache.borrow_mut().release_reserved(frame);
                    return Err(e);
                }
            };
            let inode = rc.borrow().clone();
            let sp = self.s.handle.trace_span("lock:core");
            let g = self.s.layout.lock().await;
            self.s.handle.trace_exit(sp);
            let mapped = g.get_mut().map_block(&inode, blk).await;
            match mapped {
                Ok(Some(a)) => {
                    // The block may still sit in the layout's write buffer
                    // (LFS unflushed segment): serve it from there.
                    if let Some(p) = g.get().staged_block(a) {
                        let data = p.bytes().map(|b| b.to_vec());
                        let mut cache = self.s.cache.borrow_mut();
                        cache.commit(frame, key, data.clone(), self.s.handle.now());
                        return Ok(data);
                    }
                    Some(a)
                }
                Ok(None) => None,
                Err(e) => {
                    self.s.cache.borrow_mut().release_reserved(frame);
                    return Err(e.into());
                }
            }
        };
        let data: Option<Vec<u8>> = match addr {
            None => match self.s.cfg.data_mode {
                // A hole reads as zeroes.
                DataMode::Real => Some(vec![0u8; BLOCK_SIZE as usize]),
                DataMode::Simulated => None,
            },
            Some(addr) => {
                // LFS may still hold the block in its unflushed segment;
                // route through the layout in that case. Fast path: raw
                // device read.
                match self.s.io.read_block(addr).await {
                    Ok(payload) => payload.bytes().map(|b| b.to_vec()),
                    Err(e) => {
                        self.s.cache.borrow_mut().release_reserved(frame);
                        return Err(e.into());
                    }
                }
            }
        };
        let mut cache = self.s.cache.borrow_mut();
        cache.commit(frame, key, data.clone(), self.s.handle.now());
        Ok(data)
    }

    /// Writes one whole block through the cache (dirtying it); the dirty
    /// block is attributed to `owner` for flush accounting.
    async fn write_block_cached(
        &self,
        owner: u32,
        ino: Ino,
        blk: u64,
        data: Option<Vec<u8>>,
    ) -> FsResult<()> {
        let key = BlockKey::new(FileId(ino.0), blk);
        loop {
            let present = self.s.cache.borrow().peek(key).is_some();
            if !present {
                let frame = self.reserve_frame().await?;
                let mut cache = self.s.cache.borrow_mut();
                cache.commit(frame, key, data.clone(), self.s.handle.now());
            } else if data.is_some() {
                let mut cache = self.s.cache.borrow_mut();
                if let Some(frame) = cache.peek(key) {
                    cache.set_data(frame, data.clone());
                }
            }
            // Dirty it, honouring the NVRAM budget.
            let outcome = {
                let mut cache = self.s.cache.borrow_mut();
                cache.mark_dirty_for(key, self.s.handle.now(), owner)
            };
            match outcome {
                DirtyOutcome::Ok => {
                    self.copy_delay().await;
                    return Ok(());
                }
                DirtyOutcome::NeedFlush(keys) => {
                    self.request_flush_and_wait(keys).await;
                }
            }
        }
    }

    async fn copy_delay(&self) {
        if !self.s.cfg.copy_cost.is_zero() {
            self.s.handle.sleep(self.s.cfg.copy_cost).await;
        }
    }

    /// Obtains a free cache frame, flushing per policy when none exists.
    async fn reserve_frame(&self) -> FsResult<u32> {
        loop {
            let outcome = self.s.cache.borrow_mut().reserve();
            match outcome {
                Reserve::Frame(f) => return Ok(f),
                Reserve::NeedFlush(keys) => {
                    self.request_flush_and_wait(keys).await;
                }
            }
        }
    }

    async fn request_flush_and_wait(&self, keys: Vec<BlockKey>) {
        let sp = self.s.handle.trace_span("flush:wait");
        self.request_flush_and_wait_inner(keys).await;
        self.s.handle.trace_exit(sp);
    }

    async fn request_flush_and_wait_inner(&self, keys: Vec<BlockKey>) {
        match self.s.cfg.flush_mode {
            FlushMode::Sync => {
                // The requesting thread performs the flush itself — the
                // §5.2 bottleneck, kept for ablation A2.
                if !keys.is_empty() {
                    self.do_flush(keys).await;
                    self.s.flush_done.signal();
                } else {
                    self.s.flush_done.wait().await;
                }
            }
            FlushMode::Async => {
                let tx = self.s.flush_tx.borrow().clone();
                let wait = self.s.flush_done.wait();
                if let (Some(tx), false) = (tx, keys.is_empty()) {
                    let _ = tx.try_send(keys);
                }
                wait.await;
            }
        }
    }

    /// Executes a flush batch directly (sync mode) or via the daemon.
    async fn execute_or_enqueue(&self, keys: Vec<BlockKey>) {
        match self.s.cfg.flush_mode {
            FlushMode::Sync => {
                self.do_flush(keys).await;
                self.s.flush_done.signal();
            }
            FlushMode::Async => {
                let tx = self.s.flush_tx.borrow().clone();
                if let Some(tx) = tx {
                    let _ = tx.try_send(keys);
                }
            }
        }
    }

    /// Writes the given dirty blocks out through the layout.
    async fn do_flush(&self, keys: Vec<BlockKey>) {
        let sp = if cnp_obs::trace::enabled() {
            let sp = self.s.handle.trace_span("flush:batch");
            cnp_obs::trace::span_field(sp, "blocks", cnp_obs::trace::Field::U64(keys.len() as u64));
            sp
        } else {
            cnp_obs::trace::SpanToken::NONE
        };
        self.do_flush_inner(keys).await;
        self.s.handle.trace_exit(sp);
    }

    async fn do_flush_inner(&self, keys: Vec<BlockKey>) {
        // Group by file (ordered: deterministic flush sequence).
        let mut by_file: std::collections::BTreeMap<u64, Vec<BlockKey>> =
            std::collections::BTreeMap::new();
        for k in keys {
            by_file.entry(k.file.0).or_default().push(k);
        }
        self.s.stats.borrow_mut().flush_batches += 1;
        for (file, keys) in by_file {
            let ino = Ino(file);
            let started = self.s.cache.borrow_mut().begin_flush(&keys);
            if started.is_empty() {
                continue;
            }
            // Snapshot payloads.
            let blocks: Vec<(u64, Payload)> = {
                let cache = self.s.cache.borrow();
                started
                    .iter()
                    .filter_map(|k| {
                        cache.peek(*k).map(|frame| {
                            let payload = match cache.data(frame) {
                                Some(d) => Payload::Data(d.to_vec()),
                                None => Payload::Simulated(BLOCK_SIZE),
                            };
                            (k.block, payload)
                        })
                    })
                    .collect()
            };
            let rc = match self.get_inode_rc(ino).await {
                Ok(rc) => rc,
                Err(_) => {
                    // File deleted while the flush was queued: nothing to
                    // persist, just release the cache state.
                    let now = self.s.handle.now();
                    let mut cache = self.s.cache.borrow_mut();
                    for k in &started {
                        cache.end_flush(*k, now);
                    }
                    continue;
                }
            };
            let result = {
                // The file's extent-range stripe serializes this
                // write-back against truncate/free of the same file;
                // the core lock below covers the single layout call
                // (which may run the cleaner — the global residue).
                let sp = self.s.handle.trace_span("lock:range");
                let _rg = self.s.layout_ranges.lock(file).await;
                self.s.handle.trace_exit(sp);
                let sp = self.s.handle.trace_span("lock:core");
                let g = self.s.layout.lock().await;
                self.s.handle.trace_exit(sp);
                let mut copy = rc.borrow().clone();
                let r = g.get_mut().write_file_blocks(&mut copy, blocks).await;
                if r.is_ok() {
                    let mut inode = rc.borrow_mut();
                    inode.direct = copy.direct;
                    inode.indirect = copy.indirect;
                }
                // The write may have run the cleaner, relocating other
                // files' blocks; refresh their cached pointers before
                // anything reads through the stale ones.
                let relocated = g.get_mut().take_relocated();
                for rino in relocated {
                    let cached = self.s.inodes.shard(rino.0).get(&rino).cloned();
                    if let Some(rc2) = cached {
                        if let Ok(fresh) = g.get_mut().get_inode(rino).await {
                            let mut inode = rc2.borrow_mut();
                            inode.direct = fresh.direct;
                            inode.indirect = fresh.indirect;
                        }
                    }
                }
                r
            };
            let now = self.s.handle.now();
            {
                let mut cache = self.s.cache.borrow_mut();
                let mut retry = self.s.flush_retry.borrow_mut();
                match &result {
                    Ok(()) => {
                        for k in &started {
                            retry.remove(k);
                        }
                    }
                    Err(e) => {
                        // An acknowledged dirty block must not vanish on
                        // a recoverable error: re-dirty it (bounded, so
                        // a permanently failing block cannot livelock
                        // the demand-flush loop). A dead disk is final.
                        let fatal = matches!(
                            e,
                            LayoutError::Io(IoError::PowerCut)
                                | LayoutError::Io(IoError::DeviceGone)
                        );
                        // Retry accounting is per-batch: a healthy block
                        // co-batched with a permanently bad one shares
                        // its fate after FLUSH_RETRIES (LFS converges
                        // anyway — each retry appends to a new location).
                        for k in &started {
                            let attempts = {
                                let a = retry.entry(*k).or_insert(0);
                                *a += 1;
                                *a
                            };
                            // The file may have been deleted while the
                            // flush was in flight; a gone block needs no
                            // re-dirtying (and mark_dirty would panic).
                            let resident = cache.peek(*k).is_some();
                            if !fatal && attempts < FLUSH_RETRIES && resident {
                                // Still Flushing: this marks it redirtied,
                                // so end_flush below re-queues it dirty.
                                let _ = cache.mark_dirty(*k, now);
                            } else {
                                retry.remove(k);
                            }
                        }
                    }
                }
                for k in &started {
                    cache.end_flush(*k, now);
                }
            }
            match result {
                Ok(()) => {
                    let mut st = self.s.stats.borrow_mut();
                    st.blocks_flushed += started.len() as u64;
                }
                Err(_) => {
                    self.s.stats.borrow_mut().flush_errors += 1;
                }
            }
        }
    }

    /// Exports the layout's staging buffer as the device writes that
    /// would seal it ([`cnp_layout::StorageLayout::staged_image`]) —
    /// the dead-disk crash-capture hook: when a power cut killed the
    /// disk first, [`FileSystem::seal_nvram_staging`] cannot write, so
    /// the battery-backed staging content is applied to the captured
    /// image directly.
    pub async fn staging_image(&self) -> Vec<(BlockAddr, Payload)> {
        let g = self.s.layout.lock().await;
        let staged = g.get().staged_image();
        staged
    }

    /// Non-blocking [`FileSystem::staging_image`]: `None` while the
    /// layout lock is held. A crash-instant probe must not wait for an
    /// in-flight (doomed) operation to release the lock — by then the
    /// staging buffer no longer reflects what the battery preserved at
    /// the cut.
    pub fn try_staging_image(&self) -> Option<Vec<(BlockAddr, Payload)>> {
        self.s.layout.try_lock().map(|g| g.get().staged_image())
    }

    /// Crash-capture hook for NVRAM configurations: the layout's staging
    /// buffer (the LFS in-memory segment) is modelled as residing in the
    /// same battery-backed memory as the dirty cache, so a power cut
    /// preserves it. Sealing it to the media here is equivalent to
    /// replaying that buffer at power-on, just performed before the
    /// platter snapshot. No-op without NVRAM — volatile staging dies
    /// with the machine.
    pub async fn seal_nvram_staging(&self) -> FsResult<()> {
        if self.s.cfg.cache.nvram_bytes.is_none() {
            return Ok(());
        }
        let g = self.s.layout.lock().await;
        g.get_mut().flush_staged().await?;
        Ok(())
    }

    async fn multimedia_prefetch(&self, ino: Ino) {
        // The "active file": a thread of control that pre-loads data and
        // keeps its own residency bound so continuous-media data cannot
        // flood the cache (§2).
        let mut resident: Vec<u64> = Vec::new();
        let mut blk = 0u64;
        loop {
            if self.s.shutdown.get() {
                break;
            }
            if !self.s.open_counts.borrow().contains_key(&ino) {
                break;
            }
            let blocks = match self.get_inode_rc(ino).await {
                Ok(rc) => {
                    let b = rc.borrow().blocks();
                    b
                }
                Err(_) => break,
            };
            if blk >= blocks {
                break;
            }
            if self.read_block_cached(ino, blk).await.is_err() {
                break;
            }
            resident.push(blk);
            if resident.len() as u64 > self.s.cfg.mm_resident_cap {
                let victim = resident.remove(0);
                self.s.cache.borrow_mut().remove_block(BlockKey::new(FileId(ino.0), victim));
            }
            blk += 1;
            // Pace the prefetch: one block per ~ms keeps QoS-ish delivery.
            self.s.handle.sleep(cnp_sim::SimDuration::from_millis(1)).await;
            let _ = self.s.cfg.mm_prefetch;
        }
    }
}

/// A client's view of a shared [`FileSystem`]: every engine handle is
/// the same cache + layout + driver, but operations issued through a
/// `ClientFs` are attributed to its client id (today: dirty-block flush
/// accounting; the attribution point for any future per-client QoS).
///
/// Cloneable and cheap — a multi-client workload clones the engine once
/// per client task and drives the abstract client interface through it.
///
/// With a [`HistoryLog`] attached ([`ClientFs::with_history`]), every
/// operation is additionally recorded as an *(invoke, ack)* interval
/// plus its observable outcome — the multi-client history a
/// linearizability checker consumes. A failed operation is recorded
/// with its error and never reads as acknowledged.
#[derive(Clone)]
pub struct ClientFs {
    fs: FileSystem,
    id: u32,
    history: Option<HistoryLog>,
}

impl ClientFs {
    /// The client id carried by this handle.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The underlying shared engine.
    pub fn fs(&self) -> &FileSystem {
        &self.fs
    }

    /// Attaches a history log: every subsequent operation through this
    /// handle is recorded into `log` (shared across clones, so N
    /// clients recording into one log form a single history).
    pub fn with_history(mut self, log: HistoryLog) -> ClientFs {
        self.history = Some(log);
        self
    }

    /// Invoke timestamp, taken only when a history is attached.
    fn invoke_ns(&self) -> Option<u64> {
        self.history.as_ref().map(|_| self.fs.s.handle.now().as_nanos())
    }

    /// Opens the per-operation root span on this client's trace lane
    /// and routes the current task there, so the engine-internal spans
    /// the op runs through (lock waits, cache loads, flush stalls)
    /// nest under it. Free when tracing is disabled.
    fn op_span(&self, name: &'static str) -> cnp_obs::trace::SpanToken {
        if !cnp_obs::trace::enabled() {
            return cnp_obs::trace::SpanToken::NONE;
        }
        let h = &self.fs.s.handle;
        let lane = cnp_obs::trace::client_lane(self.id);
        cnp_obs::trace::set_task_lane(h.task_key(), lane);
        cnp_obs::trace::span_enter_on(lane, name, h.now().as_nanos())
    }

    /// Closes an [`ClientFs::op_span`] root span.
    fn op_exit(&self, tok: cnp_obs::trace::SpanToken) {
        self.fs.s.handle.trace_exit(tok);
    }

    /// Records one completed operation (no-op without a history).
    fn record(
        &self,
        invoke_ns: Option<u64>,
        op: impl FnOnce() -> HistOp,
        outcome: impl FnOnce() -> HistOutcome,
    ) {
        let (Some(log), Some(invoke_ns)) = (self.history.as_ref(), invoke_ns) else { return };
        log.record(HistoryEvent {
            client: self.id,
            invoke_ns,
            ack_ns: self.fs.s.handle.now().as_nanos(),
            op: op(),
            outcome: outcome(),
        });
    }

    /// Resolves a path to an inode number.
    pub async fn lookup(&self, path: &str) -> FsResult<Ino> {
        let sp = self.op_span("op:lookup");
        let t0 = self.invoke_ns();
        let r = self.fs.lookup(path).await;
        self.record(t0, || HistOp::Lookup { path: path.to_string() }, || ino_outcome(&r));
        self.op_exit(sp);
        r
    }

    /// Creates a regular (or typed) file.
    pub async fn create(&self, path: &str, kind: FileKind) -> FsResult<Ino> {
        let sp = self.op_span("op:create");
        let t0 = self.invoke_ns();
        let r = self.fs.create(path, kind).await;
        self.record(
            t0,
            || {
                if kind == FileKind::Directory {
                    HistOp::Mkdir { path: path.to_string() }
                } else {
                    HistOp::Create { path: path.to_string() }
                }
            },
            || ino_outcome(&r),
        );
        self.op_exit(sp);
        r
    }

    /// Creates a directory.
    pub async fn mkdir(&self, path: &str) -> FsResult<Ino> {
        let sp = self.op_span("op:mkdir");
        let t0 = self.invoke_ns();
        let r = self.fs.mkdir(path).await;
        self.record(t0, || HistOp::Mkdir { path: path.to_string() }, || ino_outcome(&r));
        self.op_exit(sp);
        r
    }

    /// Lists a directory.
    pub async fn readdir(&self, path: &str) -> FsResult<Vec<Dirent>> {
        let sp = self.op_span("op:readdir");
        let r = self.fs.readdir(path).await;
        self.op_exit(sp);
        r
    }

    /// Opens a file.
    pub async fn open(&self, path: &str) -> FsResult<Ino> {
        let sp = self.op_span("op:open");
        let t0 = self.invoke_ns();
        let r = self.fs.open(path).await;
        self.record(t0, || HistOp::Open { path: path.to_string() }, || ino_outcome(&r));
        self.op_exit(sp);
        r
    }

    /// Closes an open file.
    pub async fn close(&self, ino: Ino) -> FsResult<()> {
        let sp = self.op_span("op:close");
        let t0 = self.invoke_ns();
        let r = self.fs.close(ino).await;
        self.record(t0, || HistOp::Close { ino: ino.0 }, || unit_outcome(&r));
        self.op_exit(sp);
        r
    }

    /// Stats a file by path.
    pub async fn stat(&self, path: &str) -> FsResult<Inode> {
        let sp = self.op_span("op:stat");
        let t0 = self.invoke_ns();
        let r = self.fs.stat(path).await;
        self.record(
            t0,
            || HistOp::Stat { path: path.to_string() },
            || match &r {
                Ok(inode) => HistOutcome::Size(inode.size),
                Err(e) => HistOutcome::Failed(e.clone()),
            },
        );
        self.op_exit(sp);
        r
    }

    /// Stats a file by inode number (no path walk; not recorded in the
    /// history — like `readdir`, it is not part of the linearizability
    /// vocabulary).
    pub async fn stat_ino(&self, ino: Ino) -> FsResult<Inode> {
        let sp = self.op_span("op:stat_ino");
        let r = self.fs.stat_ino(ino).await;
        self.op_exit(sp);
        r
    }

    /// Reads `len` bytes at `offset`.
    pub async fn read(&self, ino: Ino, offset: u64, len: u64) -> FsResult<(u64, Option<Vec<u8>>)> {
        let sp = self.op_span("op:read");
        if !sp.is_none() {
            cnp_obs::trace::span_field(sp, "ino", cnp_obs::trace::Field::U64(ino.0));
            cnp_obs::trace::span_field(sp, "len", cnp_obs::trace::Field::U64(len));
        }
        let t0 = self.invoke_ns();
        let r = self.fs.read(ino, offset, len).await;
        self.record(
            t0,
            || HistOp::Read { ino: ino.0, offset, len },
            || match &r {
                Ok((n, _)) => HistOutcome::Bytes(*n),
                Err(e) => HistOutcome::Failed(e.clone()),
            },
        );
        self.op_exit(sp);
        r
    }

    /// Writes `len` bytes at `offset`, attributed to this client.
    pub async fn write(
        &self,
        ino: Ino,
        offset: u64,
        len: u64,
        data: Option<&[u8]>,
    ) -> FsResult<u64> {
        let sp = self.op_span("op:write");
        if !sp.is_none() {
            cnp_obs::trace::span_field(sp, "ino", cnp_obs::trace::Field::U64(ino.0));
            cnp_obs::trace::span_field(sp, "len", cnp_obs::trace::Field::U64(len));
        }
        let t0 = self.invoke_ns();
        let r = self.fs.write_for(self.id, ino, offset, len, data).await;
        self.record(
            t0,
            || HistOp::Write { ino: ino.0, offset, len },
            || match &r {
                Ok(_) => HistOutcome::Ok,
                Err(e) => HistOutcome::Failed(e.clone()),
            },
        );
        self.op_exit(sp);
        r
    }

    /// Truncates a file to `new_size` bytes.
    pub async fn truncate(&self, ino: Ino, new_size: u64) -> FsResult<()> {
        let sp = self.op_span("op:truncate");
        let t0 = self.invoke_ns();
        let r = self.fs.truncate(ino, new_size).await;
        self.record(t0, || HistOp::Truncate { ino: ino.0, size: new_size }, || unit_outcome(&r));
        self.op_exit(sp);
        r
    }

    /// Removes a file.
    pub async fn unlink(&self, path: &str) -> FsResult<()> {
        let sp = self.op_span("op:unlink");
        let t0 = self.invoke_ns();
        let r = self.fs.unlink(path).await;
        self.record(t0, || HistOp::Unlink { path: path.to_string() }, || unit_outcome(&r));
        self.op_exit(sp);
        r
    }

    /// Removes an empty directory.
    pub async fn rmdir(&self, path: &str) -> FsResult<()> {
        let sp = self.op_span("op:rmdir");
        let t0 = self.invoke_ns();
        let r = self.fs.rmdir(path).await;
        self.record(t0, || HistOp::Rmdir { path: path.to_string() }, || unit_outcome(&r));
        self.op_exit(sp);
        r
    }

    /// Renames a file or directory.
    pub async fn rename(&self, from: &str, to: &str) -> FsResult<()> {
        let sp = self.op_span("op:rename");
        let t0 = self.invoke_ns();
        let r = self.fs.rename(from, to).await;
        self.record(
            t0,
            || HistOp::Rename { from: from.to_string(), to: to.to_string() },
            || unit_outcome(&r),
        );
        self.op_exit(sp);
        r
    }
}

/// Outcome of an ino-returning operation.
fn ino_outcome(r: &FsResult<Ino>) -> HistOutcome {
    match r {
        Ok(ino) => HistOutcome::Ino(ino.0),
        Err(e) => HistOutcome::Failed(e.clone()),
    }
}

/// Outcome of a unit operation.
fn unit_outcome(r: &FsResult<()>) -> HistOutcome {
    match r {
        Ok(()) => HistOutcome::Ok,
        Err(e) => HistOutcome::Failed(e.clone()),
    }
}

/// Pads a string into a whole metadata block (symlink storage).
fn bytes_padded(s: &str) -> Vec<u8> {
    let mut v = s.as_bytes().to_vec();
    v.resize(BLOCK_SIZE as usize, 0);
    v
}

/// Splits an absolute path into components.
fn split_path(path: &str) -> FsResult<Vec<String>> {
    if !path.starts_with('/') {
        return Err(FsError::BadPath(path.to_string()));
    }
    Ok(path.split('/').filter(|p| !p.is_empty()).map(|p| p.to_string()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnp_disk::{sim_disk_driver, CLook, Hp97560};
    use cnp_layout::{LfsLayout, LfsParams};
    use cnp_sim::{Sim, SimTime};

    fn run_fs<F, Fut>(data_mode: DataMode, f: F)
    where
        F: FnOnce(FileSystem) -> Fut + 'static,
        Fut: std::future::Future<Output = ()> + 'static,
    {
        run_fs_cfg(FsConfig { data_mode, ..FsConfig::default() }, f)
    }

    fn run_fs_cfg<F, Fut>(cfg: FsConfig, f: F)
    where
        F: FnOnce(FileSystem) -> Fut + 'static,
        Fut: std::future::Future<Output = ()> + 'static,
    {
        let sim = Sim::new(31);
        let h = sim.handle();
        let driver = sim_disk_driver(&h, "d0", Box::new(Hp97560::new()), Box::new(CLook));
        let layout = Layout::Lfs(LfsLayout::new(&h, driver, LfsParams::default()));
        let fs = FileSystem::new(&h, layout, cfg);
        let done = Rc::new(Cell::new(false));
        let done2 = done.clone();
        let fs2 = fs.clone();
        h.spawn("test", async move {
            fs2.format().await.unwrap();
            f(fs2.clone()).await;
            done2.set(true);
            fs2.shutdown();
        });
        sim.run_until(SimTime::from_nanos(u64::MAX / 2));
        assert!(done.get(), "test body did not complete");
    }

    #[test]
    fn create_write_read_round_trip_real() {
        run_fs(DataMode::Real, |fs| async move {
            let ino = fs.create("/hello.txt", FileKind::Regular).await.unwrap();
            let data = b"the quick brown fox".repeat(100);
            fs.write(ino, 0, data.len() as u64, Some(&data)).await.unwrap();
            let (n, got) = fs.read(ino, 0, data.len() as u64).await.unwrap();
            assert_eq!(n, data.len() as u64);
            assert_eq!(got.unwrap(), data);
        });
    }

    #[test]
    fn pipelined_read_write_round_trip_real() {
        let cfg = FsConfig { data_mode: DataMode::Real, queue_depth: 8, ..FsConfig::default() };
        run_fs_cfg(cfg, |fs| async move {
            let ino = fs.create("/pipelined.bin", FileKind::Regular).await.unwrap();
            let data: Vec<u8> = (0..96 * 1024u32).map(|i| (i % 251) as u8).collect();
            fs.write(ino, 0, data.len() as u64, Some(&data)).await.unwrap();
            // Unaligned partial overwrite exercises the read-modify path.
            let patch = vec![0xEEu8; 6000];
            fs.write(ino, 1000, patch.len() as u64, Some(&patch)).await.unwrap();
            // Cold read after sync + cache drop is impossible here, but a
            // multi-block read still fans out over misses after unmount
            // evictions; simplest: read the whole range back.
            let (n, got) = fs.read(ino, 0, data.len() as u64).await.unwrap();
            assert_eq!(n, data.len() as u64);
            let mut want = data.clone();
            want[1000..7000].copy_from_slice(&patch);
            assert_eq!(got.unwrap(), want);
            // Unaligned windowed read.
            let (n, got) = fs.read(ino, 4097, 12_345).await.unwrap();
            assert_eq!(n, 12_345);
            assert_eq!(got.unwrap(), want[4097..4097 + 12_345].to_vec());
        });
    }

    #[test]
    fn pipelined_cold_read_builds_device_queue() {
        let cfg = FsConfig { data_mode: DataMode::Real, queue_depth: 8, ..FsConfig::default() };
        run_fs_cfg(cfg, |fs| async move {
            let ino = fs.create("/cold.bin", FileKind::Regular).await.unwrap();
            let noise = fs.create("/noise.bin", FileKind::Regular).await.unwrap();
            let bs = BLOCK_SIZE as u64;
            let data: Vec<u8> = (0..16 * BLOCK_SIZE).map(|i| (i % 127) as u8).collect();
            // Interleave the two files with syncs between them so the
            // log scatters /cold.bin across non-adjacent addresses —
            // a contiguous file would coalesce into one big read.
            for blk in 0..16u64 {
                let lo = (blk * bs) as usize;
                fs.write(ino, blk * bs, bs, Some(&data[lo..lo + bs as usize])).await.unwrap();
                fs.sync().await.unwrap();
                fs.write(noise, blk * bs, bs, Some(&vec![0xAA; bs as usize])).await.unwrap();
                fs.sync().await.unwrap();
            }
            // Remount a second engine over the same driver: its cache is
            // cold, so the multi-block read must go to the device.
            let driver = fs.s.driver.clone();
            let layout = Layout::Lfs(LfsLayout::new(fs.handle(), driver, LfsParams::default()));
            let cfg2 =
                FsConfig { data_mode: DataMode::Real, queue_depth: 8, ..FsConfig::default() };
            let fs2 = FileSystem::new(fs.handle(), layout, cfg2);
            fs2.mount().await.unwrap();
            let ino2 = fs2.lookup("/cold.bin").await.unwrap();
            let (n, got) = fs2.read(ino2, 0, data.len() as u64).await.unwrap();
            assert_eq!(n, data.len() as u64);
            assert_eq!(got.unwrap(), data);
            let stats = fs2.driver_stats();
            assert!(
                stats.max_inflight_seen >= 2.0,
                "cold pipelined read never overlapped: {}",
                stats.max_inflight_seen
            );
            fs2.shutdown();
        });
    }

    #[test]
    fn pipelined_contents_match_serial_contents() {
        fn contents(queue_depth: u32) -> Vec<u8> {
            let out: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
            let out2 = out.clone();
            let cfg = FsConfig { data_mode: DataMode::Real, queue_depth, ..FsConfig::default() };
            run_fs_cfg(cfg, move |fs| async move {
                let ino = fs.create("/oracle.bin", FileKind::Regular).await.unwrap();
                // Overlapping writes at odd offsets.
                for (i, off) in [(1u8, 0u64), (2, 9000), (3, 40_000), (4, 12_288)] {
                    let chunk = vec![i; 20_000];
                    fs.write(ino, off, chunk.len() as u64, Some(&chunk)).await.unwrap();
                }
                fs.truncate(ino, 50_000).await.unwrap();
                fs.sync().await.unwrap();
                let (n, got) = fs.read(ino, 0, 50_000).await.unwrap();
                assert_eq!(n, 50_000);
                *out2.borrow_mut() = got.unwrap();
            });
            let v = out.borrow().clone();
            v
        }
        assert_eq!(contents(1), contents(8), "queue depth must not change file contents");
    }

    #[test]
    fn simulated_mode_moves_no_bytes() {
        run_fs(DataMode::Simulated, |fs| async move {
            let ino = fs.create("/sim.dat", FileKind::Regular).await.unwrap();
            fs.write(ino, 0, 8192, None).await.unwrap();
            let (n, data) = fs.read(ino, 0, 8192).await.unwrap();
            assert_eq!(n, 8192);
            assert!(data.is_none());
            assert_eq!(fs.stats().bytes_written, 8192);
        });
    }

    #[test]
    fn client_handles_attribute_flush_traffic() {
        run_fs(DataMode::Simulated, |fs| async move {
            let a = fs.client(0);
            let b = fs.client(1);
            let ia = a.create("/a.dat", FileKind::Regular).await.unwrap();
            let ib = b.create("/b.dat", FileKind::Regular).await.unwrap();
            a.write(ia, 0, 8 * 4096, None).await.unwrap();
            b.write(ib, 0, 4 * 4096, None).await.unwrap();
            fs.sync().await.unwrap();
            let attr = fs.flushes_by_client();
            let of = |id: u32| attr.iter().find(|(c, _)| *c == id).map(|&(_, n)| n).unwrap_or(0);
            assert!(of(0) >= 8, "client 0 flushes missing: {attr:?}");
            assert!(of(1) >= 4, "client 1 flushes missing: {attr:?}");
        });
    }

    #[test]
    fn namespace_operations() {
        run_fs(DataMode::Real, |fs| async move {
            fs.mkdir("/a").await.unwrap();
            fs.mkdir("/a/b").await.unwrap();
            fs.create("/a/b/f1", FileKind::Regular).await.unwrap();
            fs.create("/a/b/f2", FileKind::Regular).await.unwrap();
            let names: Vec<String> =
                fs.readdir("/a/b").await.unwrap().into_iter().map(|e| e.name).collect();
            assert_eq!(names, vec!["f1", "f2"]);
            assert!(matches!(fs.mkdir("/a/b").await, Err(FsError::Exists(_))));
            assert!(matches!(
                fs.create("/missing/f", FileKind::Regular).await,
                Err(FsError::NotFound(_))
            ));
            fs.rename("/a/b/f1", "/a/renamed").await.unwrap();
            assert!(fs.lookup("/a/renamed").await.is_ok());
            assert!(matches!(fs.lookup("/a/b/f1").await, Err(FsError::NotFound(_))));
            fs.unlink("/a/b/f2").await.unwrap();
            fs.rmdir("/a/b").await.unwrap();
            assert!(matches!(fs.rmdir("/a").await, Err(FsError::NotEmpty(_))));
        });
    }

    #[test]
    fn delete_absorbs_dirty_blocks() {
        run_fs(DataMode::Simulated, |fs| async move {
            let ino = fs.create("/doomed", FileKind::Regular).await.unwrap();
            fs.write(ino, 0, 16 * 4096, None).await.unwrap();
            fs.unlink("/doomed").await.unwrap();
            let st = fs.stats();
            assert!(st.absorbed_blocks >= 16, "expected >=16 absorbed, got {}", st.absorbed_blocks);
            // The absorbed blocks never reached the disk as data writes.
            assert_eq!(fs.layout_stats().unwrap().data_writes, 0);
        });
    }

    #[test]
    fn cache_hits_after_first_read() {
        run_fs(DataMode::Real, |fs| async move {
            let ino = fs.create("/f", FileKind::Regular).await.unwrap();
            let data = vec![7u8; 4096];
            fs.write(ino, 0, 4096, Some(&data)).await.unwrap();
            fs.read(ino, 0, 4096).await.unwrap();
            let h1 = fs.cache_stats().hits;
            fs.read(ino, 0, 4096).await.unwrap();
            fs.read(ino, 0, 4096).await.unwrap();
            let h2 = fs.cache_stats().hits;
            assert!(h2 >= h1 + 2, "repeated reads must hit the cache");
        });
    }

    #[test]
    fn symlink_round_trip() {
        run_fs(DataMode::Real, |fs| async move {
            fs.create("/real-file", FileKind::Regular).await.unwrap();
            fs.symlink("/link", "/real-file").await.unwrap();
            assert_eq!(fs.readlink("/link").await.unwrap(), "/real-file");
        });
    }

    #[test]
    fn sync_then_remount_sees_files() {
        let sim = Sim::new(37);
        let h = sim.handle();
        let driver = sim_disk_driver(&h, "d0", Box::new(Hp97560::new()), Box::new(CLook));
        let done = Rc::new(Cell::new(false));
        let done2 = done.clone();
        let h2 = h.clone();
        h.spawn("test", async move {
            let layout = Layout::Lfs(LfsLayout::new(&h2, driver.clone(), LfsParams::default()));
            let cfg = FsConfig { data_mode: DataMode::Real, ..FsConfig::default() };
            let fs = FileSystem::new(&h2, layout, cfg.clone());
            fs.format().await.unwrap();
            fs.mkdir("/docs").await.unwrap();
            let ino = fs.create("/docs/report", FileKind::Regular).await.unwrap();
            let data = vec![0x5a; 10_000];
            fs.write(ino, 0, data.len() as u64, Some(&data)).await.unwrap();
            fs.unmount().await.unwrap();
            // Remount with a fresh engine over the same (shared) disk;
            // the first engine's driver must stay alive until the end.
            let layout2 = Layout::Lfs(LfsLayout::new(&h2, driver.clone(), LfsParams::default()));
            let fs2 = FileSystem::new(&h2, layout2, cfg);
            fs2.mount().await.unwrap();
            let ino2 = fs2.lookup("/docs/report").await.unwrap();
            let (n, got) = fs2.read(ino2, 0, 10_000).await.unwrap();
            assert_eq!(n, 10_000);
            assert_eq!(got.unwrap(), data);
            fs2.shutdown();
            fs.shutdown();
            done2.set(true);
        });
        sim.run_until(SimTime::from_nanos(u64::MAX / 2));
        assert!(done.get(), "test body did not complete");
    }

    #[test]
    fn nvram_pressure_stalls_writes_until_flush() {
        let sim = Sim::new(41);
        let h = sim.handle();
        let driver = sim_disk_driver(&h, "d0", Box::new(Hp97560::new()), Box::new(CLook));
        let layout = Layout::Lfs(LfsLayout::new(&h, driver, LfsParams::default()));
        let cfg = FsConfig {
            cache: cnp_cache::CacheConfig {
                block_size: 4096,
                mem_bytes: 64 * 4096,
                nvram_bytes: Some(4 * 4096),
            },
            flush: "nvram-whole".to_string(),
            data_mode: DataMode::Simulated,
            ..FsConfig::default()
        };
        let fs = FileSystem::new(&h, layout, cfg);
        let done = Rc::new(Cell::new(false));
        let done2 = done.clone();
        let fs2 = fs.clone();
        h.spawn("test", async move {
            fs2.format().await.unwrap();
            let ino = fs2.create("/big", FileKind::Regular).await.unwrap();
            // 16 blocks through a 4-block NVRAM: must stall + drain.
            fs2.write(ino, 0, 16 * 4096, None).await.unwrap();
            let st = fs2.cache_stats();
            assert!(st.nvram_stalls > 0, "writes should have hit the NVRAM bound");
            assert!(fs2.stats().blocks_flushed > 0, "stalls must trigger flushes");
            done2.set(true);
            fs2.shutdown();
        });
        sim.run_until(SimTime::from_nanos(u64::MAX / 2));
        assert!(done.get());
    }

    #[test]
    fn multimedia_open_spawns_prefetch() {
        run_fs(DataMode::Real, |fs| async move {
            let ino = fs.create("/video", FileKind::Multimedia).await.unwrap();
            let data = vec![3u8; 64 * 1024];
            fs.write(ino, 0, data.len() as u64, Some(&data)).await.unwrap();
            fs.sync().await.unwrap();
            fs.open("/video").await.unwrap();
            // Give the active file's thread time to prefetch.
            fs.handle().sleep(cnp_sim::SimDuration::from_millis(50)).await;
            let misses_before = fs.cache_stats().misses;
            fs.read(ino, 0, 16 * 4096).await.unwrap();
            let misses_after = fs.cache_stats().misses;
            assert_eq!(misses_before, misses_after, "prefetched reads must hit");
            fs.close(ino).await.unwrap();
        });
    }
}
