//! File-system error type.

use cnp_disk::IoError;
use cnp_layout::LayoutError;

/// Errors surfaced by the abstract client interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Path component not found.
    NotFound(String),
    /// Target already exists.
    Exists(String),
    /// Operation requires a directory.
    NotADirectory(String),
    /// Operation requires a non-directory.
    IsADirectory(String),
    /// Directory not empty on rmdir.
    NotEmpty(String),
    /// Malformed path or name.
    BadPath(String),
    /// Underlying layout failure (non-I/O: corruption, space, inodes).
    Layout(LayoutError),
    /// Device-level I/O failure (media error, power cut, bus fault) —
    /// surfaced as its own variant so callers can distinguish a dying
    /// disk from a confused layout.
    Disk(IoError),
    /// Offset/length beyond the representable file size.
    TooBig,
}

impl FsError {
    /// True if the failure is the disk reporting a power cut.
    pub fn is_power_cut(&self) -> bool {
        matches!(self, FsError::Disk(IoError::PowerCut))
    }
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "not found: {p}"),
            FsError::Exists(p) => write!(f, "already exists: {p}"),
            FsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            FsError::IsADirectory(p) => write!(f, "is a directory: {p}"),
            FsError::NotEmpty(p) => write!(f, "directory not empty: {p}"),
            FsError::BadPath(p) => write!(f, "bad path: {p}"),
            FsError::Layout(e) => write!(f, "layout error: {e}"),
            FsError::Disk(e) => write!(f, "disk error: {e}"),
            FsError::TooBig => write!(f, "file too big"),
        }
    }
}

impl std::error::Error for FsError {}

impl From<LayoutError> for FsError {
    fn from(e: LayoutError) -> Self {
        match e {
            LayoutError::Io(io) => FsError::Disk(io),
            other => FsError::Layout(other),
        }
    }
}

impl From<IoError> for FsError {
    fn from(e: IoError) -> Self {
        FsError::Disk(e)
    }
}

/// Result alias for file-system operations.
pub type FsResult<T> = Result<T, FsError>;
