//! Sharded interior tables: the engine's key-indexed maps, partitioned.
//!
//! The shared engine keeps several tables every client touches on every
//! operation — the inode table, the block in-flight table. Unsharded,
//! each is one `RefCell<HashMap>`: a single borrow point and, in any
//! multi-core port, a single lock. [`ShardedTable`] partitions the
//! entries by key hash so independent clients land on independent
//! shards, mirroring the lock striping in `cnp_sim::ShardedMutex`.
//!
//! Determinism: routing uses the same fixed multiplicative hash as the
//! lock stripes (`cnp_sim`'s Fibonacci spread), never the std
//! `HashMap` hasher, so the shard of a key is a pure function of the
//! key and the shard count. Partitioning never reorders any decision —
//! iteration helpers that feed persistence paths collect across shards
//! and sort, exactly as the unsharded table had to.

use std::cell::{Ref, RefCell, RefMut};
use std::collections::HashMap;
use std::hash::Hash;

/// Fixed key → shard spreading (Fibonacci multiplicative hash over a
/// `u64` key image); identical constant to the lock-stripe spread so a
/// table shard and its guarding lock stripe agree.
pub(crate) fn spread(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32
}

/// A `HashMap` partitioned into `shards` independently borrowable
/// shards by a deterministic hash of the key's `u64` image.
pub(crate) struct ShardedTable<K, V> {
    shards: Vec<RefCell<HashMap<K, V>>>,
}

impl<K: Eq + Hash + Copy, V> ShardedTable<K, V> {
    /// Builds an empty table with `shards` partitions (≥ 1 enforced).
    /// Callers address entries by the key's `u64` image (the value they
    /// also stripe locks by), passed to [`ShardedTable::shard`].
    pub fn new(shards: u32) -> ShardedTable<K, V> {
        assert!(shards >= 1, "a table needs at least one shard");
        ShardedTable { shards: (0..shards).map(|_| RefCell::new(HashMap::new())).collect() }
    }

    fn shard_of(&self, image: u64) -> usize {
        (spread(image) % self.shards.len() as u64) as usize
    }

    /// Immutably borrows the shard holding `image`.
    pub fn shard(&self, image: u64) -> Ref<'_, HashMap<K, V>> {
        self.shards[self.shard_of(image)].borrow()
    }

    /// Mutably borrows the shard holding `image`.
    pub fn shard_mut(&self, image: u64) -> RefMut<'_, HashMap<K, V>> {
        self.shards[self.shard_of(image)].borrow_mut()
    }

    /// Collects every key across shards (unordered; callers that feed
    /// persistence paths must sort — shard walk order is stable but
    /// the in-shard `HashMap` order is not).
    pub fn keys(&self) -> Vec<K> {
        self.shards.iter().flat_map(|s| s.borrow().keys().copied().collect::<Vec<K>>()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(shards: u32) -> ShardedTable<u64, u32> {
        ShardedTable::new(shards)
    }

    #[test]
    fn routing_is_deterministic_and_consistent() {
        let t = table(8);
        for k in 0..256u64 {
            t.shard_mut(k).insert(k, k as u32);
        }
        for k in 0..256u64 {
            assert_eq!(t.shard(k).get(&k).copied(), Some(k as u32));
        }
        assert_eq!(t.keys().len(), 256);
    }

    #[test]
    fn distinct_shards_borrow_independently() {
        let t = table(16);
        // Find two keys on different shards and hold both borrows.
        let (a, b) = (0u64, 1u64);
        assert_ne!(t.shard_of(a), t.shard_of(b));
        let ga = t.shard_mut(a);
        let gb = t.shard_mut(b);
        drop((ga, gb));
    }

    #[test]
    fn single_shard_matches_unsharded_semantics() {
        let t = table(1);
        t.shard_mut(7).insert(7, 1);
        t.shard_mut(99).insert(99, 2);
        assert_eq!(t.shard(7).len(), 2, "one shard holds everything");
    }
}
