//! Per-client operation histories: the raw material of linearizability
//! checking.
//!
//! A [`HistoryLog`] attached to a [`crate::ClientFs`] records every
//! operation issued through that handle as an *(invoke, ack)* interval
//! plus the observable outcome. The log is shared (cheaply cloneable),
//! so N client handles recording into one log produce a single
//! multi-client history in completion order — exactly what a witness
//! search consumes. Recording is off unless a log is attached, so the
//! hot path of un-instrumented runs is untouched.
//!
//! The outcome keeps *observables only* (inode numbers, byte counts,
//! sizes, or the error): a checker replays the operations against a
//! sequential model and compares these observables, so anything the
//! model cannot predict (latencies, cache state) stays out.

use std::cell::RefCell;
use std::rc::Rc;

use crate::error::FsError;

/// One recorded operation, in the shared vocabulary of the abstract
/// client interface. Paths identify namespace operations; data-path
/// operations carry the inode number the client held.
#[derive(Debug, Clone, PartialEq)]
pub enum HistOp {
    /// Path resolution.
    Lookup {
        /// Resolved path.
        path: String,
    },
    /// File creation (any kind except directories).
    Create {
        /// Created path.
        path: String,
    },
    /// Directory creation.
    Mkdir {
        /// Created path.
        path: String,
    },
    /// Open (resolves and bumps the open count).
    Open {
        /// Opened path.
        path: String,
    },
    /// Close.
    Close {
        /// Closed inode.
        ino: u64,
    },
    /// Read `len` bytes at `offset`.
    Read {
        /// Inode read.
        ino: u64,
        /// Byte offset.
        offset: u64,
        /// Requested length.
        len: u64,
    },
    /// Write `len` bytes at `offset`.
    Write {
        /// Inode written.
        ino: u64,
        /// Byte offset.
        offset: u64,
        /// Acknowledged length.
        len: u64,
    },
    /// Truncate to `size` bytes.
    Truncate {
        /// Inode truncated.
        ino: u64,
        /// New size.
        size: u64,
    },
    /// File removal.
    Unlink {
        /// Removed path.
        path: String,
    },
    /// Directory removal.
    Rmdir {
        /// Removed path.
        path: String,
    },
    /// Rename.
    Rename {
        /// Source path.
        from: String,
        /// Destination path.
        to: String,
    },
    /// Stat by path.
    Stat {
        /// Statted path.
        path: String,
    },
}

/// The observable outcome of a recorded operation.
#[derive(Debug, Clone, PartialEq)]
pub enum HistOutcome {
    /// Success with no observable value (close, unlink, rename, …).
    Ok,
    /// Success returning an inode number (lookup, create, mkdir, open).
    Ino(u64),
    /// Success returning a byte count (read).
    Bytes(u64),
    /// Success returning a file size (stat).
    Size(u64),
    /// Failure: the operation was *not* acknowledged. The error is kept
    /// so crash tests can distinguish a dying disk from a layout error.
    Failed(FsError),
}

/// One entry of a recorded multi-client history.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEvent {
    /// Issuing client id.
    pub client: u32,
    /// Virtual time (ns) the operation was invoked.
    pub invoke_ns: u64,
    /// Virtual time (ns) the operation returned to the client.
    pub ack_ns: u64,
    /// The operation.
    pub op: HistOp,
    /// What the client observed.
    pub outcome: HistOutcome,
}

impl HistoryEvent {
    /// True if the operation was acknowledged as successful. An op that
    /// returned an error — a power cut included — must never read as
    /// acked: loss accounting and witness search both rely on it.
    pub fn acked(&self) -> bool {
        !matches!(self.outcome, HistOutcome::Failed(_))
    }

    /// True if the operation failed because the disk reported a power
    /// cut.
    pub fn power_cut(&self) -> bool {
        matches!(&self.outcome, HistOutcome::Failed(e) if e.is_power_cut())
    }
}

/// A shared, append-only history of client operations (completion
/// order). Clone the log once per client handle; all clones append to
/// the same history.
#[derive(Debug, Clone, Default)]
pub struct HistoryLog {
    events: Rc<RefCell<Vec<HistoryEvent>>>,
}

impl HistoryLog {
    /// An empty log.
    pub fn new() -> HistoryLog {
        HistoryLog::default()
    }

    /// Appends one event (completion order).
    pub fn record(&self, event: HistoryEvent) {
        self.events.borrow_mut().push(event);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }

    /// Snapshot of the history so far.
    pub fn snapshot(&self) -> Vec<HistoryEvent> {
        self.events.borrow().clone()
    }

    /// Drains the history, leaving the log empty.
    pub fn take(&self) -> Vec<HistoryEvent> {
        std::mem::take(&mut *self.events.borrow_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnp_disk::IoError;

    #[test]
    fn acked_tracks_outcome() {
        let ok = HistoryEvent {
            client: 0,
            invoke_ns: 1,
            ack_ns: 2,
            op: HistOp::Stat { path: "/f".into() },
            outcome: HistOutcome::Size(0),
        };
        assert!(ok.acked());
        assert!(!ok.power_cut());
        let cut = HistoryEvent {
            outcome: HistOutcome::Failed(FsError::Disk(IoError::PowerCut)),
            ..ok.clone()
        };
        assert!(!cut.acked());
        assert!(cut.power_cut());
        let other =
            HistoryEvent { outcome: HistOutcome::Failed(FsError::NotFound("/f".into())), ..ok };
        assert!(!other.acked());
        assert!(!other.power_cut());
    }

    /// Satellite regression for the crash oracle's ground truth: an
    /// operation that fails with [`FsError::Disk`]`(PowerCut)` must
    /// never read as acked in the recorded history — and the history's
    /// acked count must agree exactly with the successes the caller
    /// observed. Asserted at queue depth 1 (lock-step) and 8
    /// (pipelined), whose error paths differ.
    #[test]
    fn power_cut_errors_are_never_acked_in_history() {
        for qd in [1u32, 8] {
            let (events, ok_ops, err_ops) = run_power_cut_leg(qd);
            let cuts = events.iter().filter(|e| e.power_cut()).count();
            assert!(cuts > 0, "qd={qd}: the cut must surface in recorded operations");
            for e in &events {
                if e.power_cut() {
                    assert!(!e.acked(), "qd={qd}: a power-cut op must not appear acked: {e:?}");
                }
            }
            let acked = events.iter().filter(|e| e.acked()).count() as u64;
            let failed = events.len() as u64 - acked;
            assert_eq!(acked, ok_ops, "qd={qd}: history acks must match observed successes");
            assert_eq!(failed, err_ops, "qd={qd}: history failures must match observed errors");
        }
    }

    /// Drives reads through a client handle into a disk that power-cuts
    /// mid-run; returns (history, Ok results seen, Err results seen).
    fn run_power_cut_leg(queue_depth: u32) -> (Vec<HistoryEvent>, u64, u64) {
        use crate::{DataMode, FileSystem, FsConfig};
        use cnp_disk::{
            spawn_disk, Backend, CLook, DiskDriver, DiskOpts, FaultPlan, Hp97560, ScsiBus,
            SimBackend,
        };
        use cnp_layout::{FileKind, Layout, LfsLayout, LfsParams};
        use cnp_sim::{Sim, SimTime};
        use std::cell::RefCell;
        use std::rc::Rc;

        let sim = Sim::new(17 + queue_depth as u64);
        let h = sim.handle();
        let bus = ScsiBus::new(&h);
        let disk = spawn_disk(
            &h,
            "disk:pc0",
            Box::new(Hp97560::new()),
            bus.clone(),
            DiskOpts::default(),
            FaultPlan { power_cut_at_op: Some(120), ..FaultPlan::default() },
        );
        let driver = DiskDriver::new(
            &h,
            "pc0",
            Backend::Sim(SimBackend { bus, disk, host_id: 7 }),
            Box::new(CLook),
        );
        let layout = Layout::Lfs(LfsLayout::new(&h, driver, LfsParams::default()));
        let cfg = FsConfig {
            // A tiny cache forces evictions, so reads keep touching the
            // (dying) disk instead of hitting warm frames.
            cache: cnp_cache::CacheConfig {
                block_size: 4096,
                mem_bytes: 8 * 4096,
                nvram_bytes: None,
            },
            queue_depth,
            data_mode: DataMode::Simulated,
            ..FsConfig::default()
        };
        type LegOutcome = (Vec<HistoryEvent>, u64, u64);
        let fs = FileSystem::new(&h, layout, cfg);
        let out: Rc<RefCell<Option<LegOutcome>>> = Rc::new(RefCell::new(None));
        let out2 = out.clone();
        h.spawn("power-cut-leg", async move {
            fs.format().await.unwrap();
            let log = HistoryLog::new();
            let cfs = fs.client(0).with_history(log.clone());
            let ino = cfs.create("/victim", FileKind::Regular).await.unwrap();
            cfs.write(ino, 0, 32 * 4096, None).await.unwrap();
            fs.sync().await.unwrap();
            let (mut ok_ops, mut err_ops) = (0u64, 0u64);
            // Cold re-reads march the disk toward its cut.
            for round in 0..8u64 {
                for blk in 0..32u64 {
                    match cfs.read(ino, blk * 4096, 4096).await {
                        Ok(_) => ok_ops += 1,
                        Err(e) => {
                            assert!(
                                e.is_power_cut(),
                                "round {round}: only the cut may fail reads: {e}"
                            );
                            err_ops += 1;
                        }
                    }
                }
            }
            // The creation burst went through the handle too.
            ok_ops += 2; // create + write above.
            *out2.borrow_mut() = Some((log.take(), ok_ops, err_ops));
            fs.shutdown();
        });
        sim.run_until(SimTime::from_nanos(u64::MAX / 2));
        let r = out.borrow_mut().take().expect("leg did not finish");
        r
    }

    #[test]
    fn log_is_shared_between_clones() {
        let log = HistoryLog::new();
        let log2 = log.clone();
        log.record(HistoryEvent {
            client: 1,
            invoke_ns: 0,
            ack_ns: 1,
            op: HistOp::Close { ino: 3 },
            outcome: HistOutcome::Ok,
        });
        assert_eq!(log2.len(), 1);
        let drained = log2.take();
        assert_eq!(drained.len(), 1);
        assert!(log.is_empty());
    }
}
