//! # cnp-core — the cut-and-paste framework core
//!
//! The paper's abstract client interface, global file table, typed
//! instantiated files, and the engine wiring cache, storage layout and
//! disk driver together (§2). Instantiate it with a virtual clock and
//! simulated payloads and you have Patsy; instantiate it with a
//! wall-clock and a file-backed driver and you have PFS — same code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod fs;
pub mod history;
mod shard;

pub use config::{DataMode, FlushMode, FsConfig};
pub use error::{FsError, FsResult};
pub use fs::{ClientFs, FileSystem, FsStats, NvramSnapshot};
pub use history::{HistOp, HistOutcome, HistoryEvent, HistoryLog};
