//! File-system engine configuration: the cut-and-paste wiring point.
//!
//! Every policy the paper's components expose is selected here by name,
//! so a Patsy experiment and a PFS instance differ only in configuration.

use cnp_cache::CacheConfig;
use cnp_sim::SimDuration;

/// Whether user file data carries real bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataMode {
    /// On-line (PFS): every block carries real bytes.
    Real,
    /// Off-line (Patsy): user data is length-only; metadata stays real.
    Simulated,
}

/// How cache flushes requested by policies are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushMode {
    /// A dedicated flush daemon performs the I/O (the §5.2 lesson).
    Async,
    /// The requesting task performs the flush inline (the bottleneck the
    /// paper found; kept for ablation A2).
    Sync,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct FsConfig {
    /// Cache geometry (memory size, block size, optional NVRAM bound).
    pub cache: CacheConfig,
    /// Replacement policy name (`lru`, `fifo`, `random`, `lfu`, `slru`,
    /// `lru-k`).
    pub replacement: String,
    /// Flush policy name (`write-delay`, `ups`, `ups-whole`,
    /// `nvram-whole`, `nvram-partial`).
    pub flush: String,
    /// Flush execution mode.
    pub flush_mode: FlushMode,
    /// I/O pipeline depth: how many block requests the engine keeps in
    /// flight per multi-block operation, and how many commands the disk
    /// driver keeps outstanding at the device. `1` (the default) is the
    /// legacy lock-step path and replays pre-pipelining runs exactly;
    /// raising it lets multi-block reads/writes and flush batches fan
    /// out, building the disk queue the I/O schedulers exist to exploit.
    pub queue_depth: u32,
    /// Real or simulated user data.
    pub data_mode: DataMode,
    /// Simulated cost of copying one cache block ("the simulator delays
    /// the current thread for the amount of time it would take to copy
    /// the data", §2).
    pub copy_cost: SimDuration,
    /// Fixed per-operation request-handling overhead.
    pub op_overhead: SimDuration,
    /// Blocks a multimedia (active) file prefetches ahead.
    pub mm_prefetch: u64,
    /// Resident-block cap for multimedia files (their derived cache
    /// policy keeps them from flooding the cache, §2).
    pub mm_resident_cap: u64,
    /// Lock/table shard count for the engine's interior concurrency
    /// structures: the namespace lock (striped by parent directory
    /// inode), the inode table, the block in-flight table, the layout
    /// extent-range locks, and the cache's key-indexed structures.
    /// `1` (the default) is the unsharded legacy configuration and
    /// replays pre-sharding runs exactly; raising it lets independent
    /// clients' operations proceed past each other. Single-client
    /// seeded runs are byte-identical at every shard count (enforced
    /// by proptest): shard routing partitions structures, it never
    /// reorders decisions.
    pub shards: u32,
    /// Disk model generation backing this engine: `hp97560` (the 1996
    /// mechanical baseline) or `ssd` (seek-free multi-channel flash).
    /// Purely informational to the engine itself — whoever builds the
    /// driver picks the model — but carried here so one config names
    /// the whole hardware configuration.
    pub disk: String,
    /// Number of RAID-0 striped spindles/devices behind the driver.
    /// `1` (the default) is a single disk and the legacy wiring.
    pub disks: u32,
    /// RAID-0 stripe chunk size in KiB (multiple of the block size; the
    /// 64 KiB default keeps 4 KiB blocks unsplit).
    pub chunk_kib: u32,
    /// Test-only: reintroduce the pre-fix stale-size write ordering
    /// (size extended only *after* all blocks are dirtied, so a
    /// mid-write flush persists a stale size and the acked tail is
    /// unreachable after a crash). Exists so `cnp-check` can prove its
    /// crash-point enumeration catches this class of bug; never set it
    /// outside a checker self-test.
    pub plant_stale_size_bug: bool,
}

impl Default for FsConfig {
    fn default() -> Self {
        FsConfig {
            cache: CacheConfig { block_size: 4096, mem_bytes: 16 * 1024 * 1024, nvram_bytes: None },
            replacement: "lru".to_string(),
            flush: "write-delay".to_string(),
            flush_mode: FlushMode::Async,
            queue_depth: 1,
            data_mode: DataMode::Simulated,
            copy_cost: SimDuration::from_micros(80),
            op_overhead: SimDuration::from_micros(100),
            mm_prefetch: 8,
            mm_resident_cap: 64,
            shards: 1,
            disk: "hp97560".to_string(),
            disks: 1,
            chunk_kib: 64,
            plant_stale_size_bug: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_writedelay_lru_async() {
        let c = FsConfig::default();
        assert_eq!(c.replacement, "lru");
        assert_eq!(c.flush, "write-delay");
        assert_eq!(c.flush_mode, FlushMode::Async);
        assert_eq!(c.cache.frames(), 4096);
        // Lock-step by default: pipelining is opt-in so seeded runs stay
        // comparable across versions.
        assert_eq!(c.queue_depth, 1);
        // First hardware generation by default: every historical
        // baseline was measured on a single HP 97560.
        assert_eq!(c.disk, "hp97560");
        assert_eq!(c.disks, 1);
        assert_eq!(c.chunk_kib, 64);
    }
}
