//! Inodes: the on-disk per-file metadata record.

use crate::types::codec::{get_u32, get_u64, put_u32, put_u64};
use crate::types::{BlockAddr, FileKind, Ino, BLOCK_SIZE, NDIRECT};

/// Serialized inode size; [`BLOCK_SIZE`]/256 inodes pack per block.
pub const INODE_SIZE: usize = 256;

/// Inodes per file-system block.
pub const INODES_PER_BLOCK: usize = BLOCK_SIZE as usize / INODE_SIZE;

const MAGIC: u32 = 0x1f5_0de;

/// The in-memory/on-disk inode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inode {
    /// Inode number.
    pub ino: Ino,
    /// File type.
    pub kind: FileKind,
    /// File size in bytes.
    pub size: u64,
    /// Hard-link count.
    pub nlink: u32,
    /// Modification time (nanoseconds of simulation time).
    pub mtime: u64,
    /// Direct block pointers.
    pub direct: [BlockAddr; NDIRECT],
    /// Single indirect block pointer.
    pub indirect: BlockAddr,
}

impl Inode {
    /// Creates an empty inode of the given kind.
    pub fn new(ino: Ino, kind: FileKind) -> Self {
        Inode {
            ino,
            kind,
            size: 0,
            nlink: 1,
            mtime: 0,
            direct: [BlockAddr::NONE; NDIRECT],
            indirect: BlockAddr::NONE,
        }
    }

    /// File size in whole blocks (rounded up).
    pub fn blocks(&self) -> u64 {
        self.size.div_ceil(BLOCK_SIZE as u64)
    }

    /// Serializes to exactly [`INODE_SIZE`] bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = vec![0u8; INODE_SIZE];
        put_u32(&mut buf, 0, MAGIC);
        buf[4] = self.kind.tag();
        put_u64(&mut buf, 8, self.ino.0);
        put_u64(&mut buf, 16, self.size);
        put_u32(&mut buf, 24, self.nlink);
        put_u64(&mut buf, 32, self.mtime);
        for (i, d) in self.direct.iter().enumerate() {
            put_u64(&mut buf, 40 + i * 8, d.0);
        }
        put_u64(&mut buf, 40 + NDIRECT * 8, self.indirect.0);
        buf
    }

    /// Parses an inode from bytes; `None` on bad magic or tag.
    pub fn from_bytes(buf: &[u8]) -> Option<Inode> {
        if buf.len() < INODE_SIZE || get_u32(buf, 0) != MAGIC {
            return None;
        }
        let kind = FileKind::from_tag(buf[4])?;
        let mut direct = [BlockAddr::NONE; NDIRECT];
        for (i, d) in direct.iter_mut().enumerate() {
            *d = BlockAddr(get_u64(buf, 40 + i * 8));
        }
        Some(Inode {
            ino: Ino(get_u64(buf, 8)),
            kind,
            size: get_u64(buf, 16),
            nlink: get_u32(buf, 24),
            mtime: get_u64(buf, 32),
            direct,
            indirect: BlockAddr(get_u64(buf, 40 + NDIRECT * 8)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut ino = Inode::new(Ino(42), FileKind::Directory);
        ino.size = 123_456;
        ino.nlink = 3;
        ino.mtime = 987;
        ino.direct[0] = BlockAddr(7);
        ino.direct[11] = BlockAddr(99);
        ino.indirect = BlockAddr(1234);
        let bytes = ino.to_bytes();
        assert_eq!(bytes.len(), INODE_SIZE);
        let back = Inode::from_bytes(&bytes).expect("parse");
        assert_eq!(back, ino);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Inode::from_bytes(&[0u8; INODE_SIZE]).is_none());
        assert!(Inode::from_bytes(&[0u8; 10]).is_none());
    }

    #[test]
    fn blocks_rounds_up() {
        let mut i = Inode::new(Ino(1), FileKind::Regular);
        assert_eq!(i.blocks(), 0);
        i.size = 1;
        assert_eq!(i.blocks(), 1);
        i.size = BLOCK_SIZE as u64;
        assert_eq!(i.blocks(), 1);
        i.size = BLOCK_SIZE as u64 + 1;
        assert_eq!(i.blocks(), 2);
    }

    #[test]
    fn sixteen_inodes_per_block() {
        assert_eq!(INODES_PER_BLOCK, 16);
    }
}
