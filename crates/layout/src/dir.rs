//! Directory content encoding: packed variable-length entries.

use crate::types::codec::{get_u16, get_u64, put_u16, put_u64};
use crate::types::{FileKind, Ino};

/// One directory entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dirent {
    /// Target inode.
    pub ino: Ino,
    /// Entry file type (advisory copy of the inode's kind).
    pub kind: FileKind,
    /// Name (no `/`, not empty, max 255 bytes).
    pub name: String,
}

/// Maximum name length in bytes.
pub const MAX_NAME: usize = 255;

/// Serializes directory entries to packed bytes.
pub fn encode(entries: &[Dirent]) -> Vec<u8> {
    let mut out = Vec::new();
    for e in entries {
        let name = e.name.as_bytes();
        debug_assert!(!name.is_empty() && name.len() <= MAX_NAME);
        let mut rec = vec![0u8; 11 + name.len()];
        put_u64(&mut rec, 0, e.ino.0);
        rec[8] = e.kind.tag();
        put_u16(&mut rec, 9, name.len() as u16);
        rec[11..].copy_from_slice(name);
        out.extend_from_slice(&rec);
    }
    out
}

/// Parses packed directory bytes (ignores trailing zero padding).
pub fn decode(mut buf: &[u8]) -> Result<Vec<Dirent>, String> {
    let mut out = Vec::new();
    while buf.len() >= 11 {
        let ino = get_u64(buf, 0);
        if ino == 0 {
            break; // Zero padding marks the end.
        }
        let kind = FileKind::from_tag(buf[8]).ok_or_else(|| format!("bad kind {}", buf[8]))?;
        let nlen = get_u16(buf, 9) as usize;
        if nlen == 0 || nlen > MAX_NAME || buf.len() < 11 + nlen {
            return Err(format!("bad name length {nlen}"));
        }
        let name = std::str::from_utf8(&buf[11..11 + nlen]).map_err(|e| e.to_string())?.to_string();
        out.push(Dirent { ino: Ino(ino), kind, name });
        buf = &buf[11 + nlen..];
    }
    Ok(out)
}

/// Adds an entry; fails if the name exists.
pub fn add_entry(entries: &mut Vec<Dirent>, e: Dirent) -> Result<(), String> {
    if entries.iter().any(|x| x.name == e.name) {
        return Err(format!("entry {} exists", e.name));
    }
    entries.push(e);
    Ok(())
}

/// Removes an entry by name; returns it if present.
pub fn remove_entry(entries: &mut Vec<Dirent>, name: &str) -> Option<Dirent> {
    let i = entries.iter().position(|x| x.name == name)?;
    Some(entries.remove(i))
}

/// Looks an entry up by name.
pub fn find<'a>(entries: &'a [Dirent], name: &str) -> Option<&'a Dirent> {
    entries.iter().find(|x| x.name == name)
}

/// Validates a file name for directory insertion.
pub fn valid_name(name: &str) -> bool {
    !name.is_empty() && name.len() <= MAX_NAME && !name.contains('/') && name != "." && name != ".."
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(ino: u64, name: &str) -> Dirent {
        Dirent { ino: Ino(ino), kind: FileKind::Regular, name: name.to_string() }
    }

    #[test]
    fn encode_decode_round_trip() {
        let entries = vec![e(1, "a"), e(2, "some-longer-name.txt"), e(3, "x")];
        let buf = encode(&entries);
        let back = decode(&buf).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn decode_ignores_zero_padding() {
        let entries = vec![e(5, "hello")];
        let mut buf = encode(&entries);
        buf.resize(buf.len() + 64, 0);
        assert_eq!(decode(&buf).unwrap(), entries);
        assert!(decode(&[]).unwrap().is_empty());
    }

    #[test]
    fn add_rejects_duplicates() {
        let mut entries = vec![e(1, "a")];
        assert!(add_entry(&mut entries, e(2, "b")).is_ok());
        assert!(add_entry(&mut entries, e(3, "a")).is_err());
        assert_eq!(entries.len(), 2);
    }

    #[test]
    fn remove_and_find() {
        let mut entries = vec![e(1, "a"), e(2, "b")];
        assert_eq!(find(&entries, "b").unwrap().ino, Ino(2));
        let removed = remove_entry(&mut entries, "a").unwrap();
        assert_eq!(removed.ino, Ino(1));
        assert!(remove_entry(&mut entries, "a").is_none());
        assert!(find(&entries, "a").is_none());
    }

    #[test]
    fn name_validation() {
        assert!(valid_name("ok.txt"));
        assert!(!valid_name(""));
        assert!(!valid_name("a/b"));
        assert!(!valid_name("."));
        assert!(!valid_name(".."));
        assert!(!valid_name(&"x".repeat(256)));
        assert!(valid_name(&"x".repeat(255)));
    }

    #[test]
    fn decode_rejects_corrupt_kind() {
        let mut buf = encode(&[e(1, "a")]);
        buf[8] = 200;
        assert!(decode(&buf).is_err());
    }
}
