//! The segmented log-structured file system layout.
//!
//! "Currently, we have implemented a segmented LFS. This system stores
//! file-system updates to the end of the log, and is able to find files
//! through an IFILE. The log-cleaner can be replaced and is plugged into
//! the LFS component when the system starts up." (§2)
//!
//! Structure on disk: superblock, two alternating checkpoint regions,
//! then fixed-size segments of `seg_blocks` blocks (one summary block +
//! payload blocks). All metadata (summaries, inode blocks, IFILE/usage
//! blocks) carries real bytes even off-line, so the same code runs in
//! Patsy and PFS; only file *data* payloads may be simulated.
//!
//! Crash safety: segment payloads are written *before* their checksummed
//! summary block, so a summary that parses implies an intact segment;
//! [`LfsLayout`] (via `StorageLayout::recover`) rolls the log forward
//! from the last checkpoint by replaying exactly the segments whose
//! `(gen, epoch, seq)` identify them as post-checkpoint. Remaining
//! simplifications vs. Sprite-LFS, documented in DESIGN.md: inode
//! numbers are not reused, deletions are not logged (a crash can
//! resurrect a file deleted after the last checkpoint), and the usage
//! table persisted at a checkpoint may be a few blocks stale for the
//! checkpoint's own segment.

mod structs;

pub use structs::{SegSummary, SegUsage, SumEntry};

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::rc::Rc;

use cnp_disk::{DiskDriver, Payload};
use cnp_sim::{Event, Handle};

use crate::error::{LResult, LayoutError};
use crate::inode::{Inode, INODES_PER_BLOCK, INODE_SIZE};
use crate::io::BlockIo;
use crate::layout::{LayoutStats, RecoveryStats, StorageLayout};
use crate::types::{block_slot, BlockAddr, BlockSlot, FileKind, Ino, BLOCK_SIZE, NINDIRECT};

use structs::{
    imap_from_blocks, imap_pack, imap_to_blocks, imap_unpack, summary_from_block, summary_to_block,
    usage_from_blocks, usage_to_blocks, Checkpoint, SuperBlock, CKPT_ADDRS, DATA_START, IMAP_NONE,
    SUM_MAX_ENTRIES,
};

/// Cleaner victim-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CleanerPolicy {
    /// Pick the segment with the fewest live bytes.
    Greedy,
    /// Rosenblum's cost-benefit: maximize `(1-u)·age / (1+u)`.
    #[default]
    CostBenefit,
}

/// LFS tuning parameters.
#[derive(Debug, Clone)]
pub struct LfsParams {
    /// Blocks per segment, summary included (max 239; default 128 =
    /// 512 KB segments).
    pub seg_blocks: u32,
    /// Cleaner victim selection.
    pub cleaner: CleanerPolicy,
    /// Run the cleaner when free segments drop below this.
    pub clean_low_water: u32,
    /// Clean until this many segments are free.
    pub clean_high_water: u32,
    /// Seal segments through a background writer task instead of
    /// stalling the sealer: `append_block` hands a full segment to the
    /// writer and returns immediately, so an engine holding its layout
    /// lock across a seal no longer serializes every client behind one
    /// media write. Sealed-but-unwritten segments stay part of the
    /// staging buffer (served by [`StorageLayout::staged_block`],
    /// exported by [`StorageLayout::staged_image`]) until their writes
    /// complete, and durability points (`sync`/`flush_staged`/
    /// checkpoint) drain the queue — the crash-ordering invariant
    /// (payloads before summary, summaries in log order) is preserved
    /// because one writer serves the queue in seal order.
    pub background_seal: bool,
}

impl Default for LfsParams {
    fn default() -> Self {
        LfsParams {
            seg_blocks: 128,
            cleaner: CleanerPolicy::CostBenefit,
            clean_low_water: 4,
            clean_high_water: 8,
            background_seal: false,
        }
    }
}

/// A sealed segment queued for its media write (background-seal mode).
struct PendingSeal {
    /// Segment index (excluded from free/victim selection while queued).
    seg: u32,
    /// Device address of the summary block (the segment head).
    start: u64,
    /// Serialized summary block.
    summary: Vec<u8>,
    /// Payload blocks in slot order.
    payloads: Vec<Payload>,
}

/// State shared between the layout and its background seal writer.
struct SealShared {
    /// Sealed-but-unwritten segments, oldest first.
    pending: RefCell<VecDeque<PendingSeal>>,
    /// Signalled when a seal is queued.
    work: Event,
    /// Signalled after each attempted media write.
    done: Event,
    /// First media-write error; poisons later seals and durability
    /// points (the failed segment stays queued, so the battery-backed
    /// staging image still holds its blocks).
    failed: RefCell<Option<LayoutError>>,
}

impl SealShared {
    /// Whether `seg` is sealed but not yet on the media.
    fn holds(&self, seg: u32) -> bool {
        self.pending.borrow().iter().any(|p| p.seg == seg)
    }
}

/// Spawns the writer task draining `shared.pending` in seal order.
fn spawn_seal_writer(handle: &Handle, io: BlockIo, shared: Rc<SealShared>) {
    let h = handle.clone();
    handle.spawn("lfs:seal-writer", async move {
        if cnp_obs::trace::enabled() {
            let lane = cnp_obs::trace::engine_lane("seal-writer");
            cnp_obs::trace::set_task_lane(h.task_key(), lane);
        }
        loop {
            let job = shared
                .pending
                .borrow()
                .front()
                .map(|p| (p.start, p.summary.clone(), p.payloads.clone()));
            let Some((start, summary, payloads)) = job else {
                // Check-then-wait has no await between, so a concurrent
                // seal cannot slip by unnoticed (cooperative scheduler).
                shared.work.wait().await;
                continue;
            };
            // Payloads reach the media before the checksummed summary
            // that describes them — the same crash-ordering invariant as
            // the synchronous seal.
            let sp = h.trace_span("layout:seal");
            let r: LResult<()> = async {
                io.write_run(BlockAddr(start + 1), payloads).await?;
                io.write_block(BlockAddr(start), Payload::Data(summary)).await?;
                Ok(())
            }
            .await;
            h.trace_exit(sp);
            match r {
                Ok(()) => {
                    shared.pending.borrow_mut().pop_front();
                    shared.done.signal();
                }
                Err(e) => {
                    // A dead or cut device takes no retries; leave the
                    // segment staged and stop (fault campaigns run the
                    // synchronous seal, so this is a terminal state).
                    *shared.failed.borrow_mut() = Some(e);
                    shared.done.signal();
                    return;
                }
            }
        }
    });
}

/// An open (accumulating) packed-inode block in the current segment.
struct OpenInodeBlock {
    /// Index of the reserved payload slot in the current segment.
    slot_idx: usize,
    /// Inode numbers by slot.
    inos: Vec<u64>,
    /// Serialized content (patched into the segment at flush).
    bytes: Vec<u8>,
}

/// The in-memory state of the current (unflushed) segment.
struct SegBuilder {
    seg: u32,
    entries: Vec<(SumEntry, Payload)>,
    open_inode: Option<OpenInodeBlock>,
}

/// The segmented log-structured layout.
pub struct LfsLayout {
    handle: Handle,
    io: BlockIo,
    params: LfsParams,
    sb: SuperBlock,
    imap: Vec<u64>,
    usage: Vec<SegUsage>,
    next_ino: u64,
    ckpt_seq: u64,
    /// Mount epoch: bumped every time on-disk state is loaded, so
    /// segment sequence numbers are never reused across mounts.
    epoch: u64,
    /// Sequence number of the last flushed segment in this epoch.
    log_seq: u64,
    cur: SegBuilder,
    /// Blocks holding the current on-disk checkpoint's imap/usage.
    ckpt_meta: Vec<u64>,
    /// Indirect-block cache: address → pointer table (log-immutable).
    indirect: HashMap<u64, Vec<u64>>,
    indirect_fifo: Vec<u64>,
    cleaning: bool,
    mounted: bool,
    /// Inodes whose blocks the cleaner relocated since the last
    /// [`StorageLayout::take_relocated`] drain (cache-coherence signal
    /// for engines holding in-memory inode copies).
    relocated: std::collections::BTreeSet<u64>,
    /// Inodes whose next write/truncate must reconcile caller-held
    /// pointers with the log (consumed by `reconcile_pointers`, so the
    /// hot write path pays the extra inode read only after cleaning).
    stale_pointers: std::collections::BTreeSet<u64>,
    /// Segments free-segment selection must not hand out: during
    /// recovery these are young segments whose orphan data blocks look
    /// free (nothing reachable charges them) until pointer patching
    /// claims them.
    protected_segs: std::collections::BTreeSet<u32>,
    /// Background seal-writer state; `None` in synchronous-seal mode.
    seal: Option<Rc<SealShared>>,
    stats: LayoutStats,
}

const INDIRECT_CACHE_CAP: usize = 1024;

impl LfsLayout {
    /// Creates an LFS over `driver`; call [`StorageLayout::format`] or
    /// [`StorageLayout::mount`] before use.
    pub fn new(handle: &Handle, driver: DiskDriver, params: LfsParams) -> Self {
        assert!(
            params.seg_blocks >= 4 && params.seg_blocks as usize <= SUM_MAX_ENTRIES + 1,
            "seg_blocks out of range"
        );
        let io = BlockIo::new(driver);
        let blocks = io.capacity_blocks();
        let nsegs = ((blocks - DATA_START) / params.seg_blocks as u64) as u32;
        assert!(nsegs > params.clean_high_water + 2, "disk too small for LFS");
        let sb = SuperBlock { seg_blocks: params.seg_blocks, nsegs, gen: 0 };
        let seal = params.background_seal.then(|| {
            let shared = Rc::new(SealShared {
                pending: RefCell::new(VecDeque::new()),
                work: Event::new(handle),
                done: Event::new(handle),
                failed: RefCell::new(None),
            });
            spawn_seal_writer(handle, io.clone(), shared.clone());
            shared
        });
        LfsLayout {
            handle: handle.clone(),
            io,
            params,
            sb,
            imap: Vec::new(),
            usage: Vec::new(),
            next_ino: 2,
            ckpt_seq: 0,
            epoch: 0,
            log_seq: 0,
            cur: SegBuilder { seg: 0, entries: Vec::new(), open_inode: None },
            ckpt_meta: Vec::new(),
            indirect: HashMap::new(),
            indirect_fifo: Vec::new(),
            cleaning: false,
            mounted: false,
            relocated: std::collections::BTreeSet::new(),
            stale_pointers: std::collections::BTreeSet::new(),
            protected_segs: std::collections::BTreeSet::new(),
            seal,
            stats: LayoutStats::default(),
        }
    }

    /// Cleaner policy in use.
    pub fn cleaner_policy(&self) -> CleanerPolicy {
        self.params.cleaner
    }

    /// Number of completely free segments (excluding the current one).
    pub fn free_segments(&self) -> u32 {
        self.usage
            .iter()
            .enumerate()
            .filter(|(s, u)| {
                *s as u32 != self.cur.seg && u.live == 0 && !self.seal_pending(*s as u32)
            })
            .count() as u32
    }

    /// Segment utilization snapshot (live fraction per segment).
    pub fn utilization(&self) -> Vec<f64> {
        let cap = (self.payload_per_seg() as u64 * BLOCK_SIZE as u64) as f64;
        self.usage.iter().map(|u| u.live as f64 / cap).collect()
    }

    fn payload_per_seg(&self) -> u32 {
        self.sb.seg_blocks - 1
    }

    fn seg_start(&self, seg: u32) -> u64 {
        DATA_START + seg as u64 * self.sb.seg_blocks as u64
    }

    fn seg_of(&self, addr: BlockAddr) -> u32 {
        ((addr.0 - DATA_START) / self.sb.seg_blocks as u64) as u32
    }

    fn payload_addr(&self, seg: u32, idx: usize) -> BlockAddr {
        BlockAddr(self.seg_start(seg) + 1 + idx as u64)
    }

    fn now_ns(&self) -> u64 {
        self.handle.now().as_nanos()
    }

    /// Charges `bytes` of live data to a segment.
    fn usage_add(&mut self, seg: u32, bytes: u32) {
        let u = &mut self.usage[seg as usize];
        u.live += bytes;
        u.mtime = self.handle.now().as_nanos();
    }

    /// Releases `bytes` of live data from the segment holding `addr`.
    fn supersede(&mut self, addr: BlockAddr, bytes: u32) {
        if !addr.is_some() || addr.0 < DATA_START {
            return;
        }
        let seg = self.seg_of(addr) as usize;
        // Off-device addresses can only come from corrupt pointers; the
        // fsck walker reports them — never let them panic the engine.
        let Some(u) = self.usage.get_mut(seg) else { return };
        u.live = u.live.saturating_sub(bytes);
    }

    fn imap_get(&self, ino: Ino) -> Option<(BlockAddr, usize)> {
        let v = *self.imap.get(ino.0 as usize)?;
        if v == IMAP_NONE {
            None
        } else {
            Some(imap_unpack(v))
        }
    }

    fn imap_set(&mut self, ino: Ino, v: u64) {
        let idx = ino.0 as usize;
        if idx >= self.imap.len() {
            self.imap.resize(idx + 1, IMAP_NONE);
        }
        self.imap[idx] = v;
    }

    /// Appends one payload block to the log; may flush the segment.
    async fn append_block(&mut self, entry: SumEntry, payload: Payload) -> LResult<BlockAddr> {
        if self.cur.entries.len() >= self.payload_per_seg() as usize {
            self.roll_segment().await?;
        }
        let idx = self.cur.entries.len();
        let addr = self.payload_addr(self.cur.seg, idx);
        // Inode blocks are charged per packed inode (INODE_SIZE each) by
        // `append_inode`, so a block whose inodes all die frees fully.
        if !matches!(entry, SumEntry::InodeBlock) {
            self.usage_add(self.cur.seg, BLOCK_SIZE);
        }
        self.cur.entries.push((entry, payload));
        Ok(addr)
    }

    /// Flushes the current segment (summary + payload) and opens a free one.
    async fn roll_segment(&mut self) -> LResult<()> {
        self.flush_current().await?;
        let next = self.pick_free_segment()?;
        self.cur.seg = next;
        Ok(())
    }

    async fn flush_current(&mut self) -> LResult<()> {
        if self.cur.entries.is_empty() {
            return Ok(());
        }
        // Finalize the open packed-inode block.
        if let Some(open) = self.cur.open_inode.take() {
            self.cur.entries[open.slot_idx].1 = Payload::Data(open.bytes);
        }
        let entries: Vec<SumEntry> = self.cur.entries.iter().map(|(e, _)| *e).collect();
        self.log_seq += 1;
        let summary =
            SegSummary { gen: self.sb.gen, epoch: self.epoch, seq: self.log_seq, entries };
        // The staging entries stay put until the media writes succeed:
        // the battery-backed-staging model (and dead-disk crash capture
        // via `staged_image`) must not lose acked blocks to a seal that
        // died mid-flight — a failed flush retries into place.
        let start = self.seg_start(self.cur.seg);
        if let Some(seal) = self.seal.clone() {
            // Background seal: queue the whole segment for the writer
            // task and return without touching the device. The segment
            // stays staged (and its frames stay readable through
            // `staged_block`) until the write lands.
            if let Some(e) = seal.failed.borrow().clone() {
                return Err(e);
            }
            let payloads: Vec<Payload> = self.cur.entries.drain(..).map(|(_, p)| p).collect();
            seal.pending.borrow_mut().push_back(PendingSeal {
                seg: self.cur.seg,
                start,
                summary: summary_to_block(&summary),
                payloads,
            });
            seal.work.signal();
            self.stats.segments_written += 1;
            self.stats.meta_writes += 1; // Summary block.
            return Ok(());
        }
        let run: Vec<Payload> = self.cur.entries.iter().map(|(_, p)| p.clone()).collect();
        // Crash-ordering invariant: payloads reach the media before the
        // checksummed summary that describes them, so a parseable
        // summary certifies the whole segment.
        self.io.write_run(BlockAddr(start + 1), run).await?;
        self.io.write_block(BlockAddr(start), Payload::Data(summary_to_block(&summary))).await?;
        self.cur.entries.clear();
        self.stats.segments_written += 1;
        self.stats.meta_writes += 1; // Summary block.
        Ok(())
    }

    /// Waits until every background-sealed segment is on the media
    /// (no-op in synchronous-seal mode).
    async fn drain_seals(&self) -> LResult<()> {
        let Some(seal) = &self.seal else { return Ok(()) };
        loop {
            if let Some(e) = seal.failed.borrow().clone() {
                return Err(e);
            }
            if seal.pending.borrow().is_empty() {
                return Ok(());
            }
            seal.done.wait().await;
        }
    }

    /// Exports the staging buffer as the exact device writes that would
    /// seal it — summary first at the segment head, payloads behind —
    /// without touching the device. The dead-disk half of crash
    /// capture: a power-cut disk takes no writes, so the battery-backed
    /// staging segment is applied to the captured image directly.
    fn staged_writes(&self) -> Vec<(BlockAddr, Payload)> {
        // Sealed-but-unwritten segments are still battery-backed staging:
        // a dead-disk crash capture must apply them too.
        let mut queued: Vec<(BlockAddr, Payload)> = Vec::new();
        if let Some(seal) = &self.seal {
            for p in seal.pending.borrow().iter() {
                queued.push((BlockAddr(p.start), Payload::Data(p.summary.clone())));
                for (i, pl) in p.payloads.iter().enumerate() {
                    queued.push((BlockAddr(p.start + 1 + i as u64), pl.clone()));
                }
            }
        }
        if self.cur.entries.is_empty() {
            return queued;
        }
        let mut entries: Vec<(SumEntry, Payload)> = self.cur.entries.clone();
        if let Some(open) = &self.cur.open_inode {
            entries[open.slot_idx].1 = Payload::Data(open.bytes.clone());
        }
        let summary = SegSummary {
            gen: self.sb.gen,
            epoch: self.epoch,
            seq: self.log_seq + 1,
            entries: entries.iter().map(|(e, _)| *e).collect(),
        };
        let start = self.seg_start(self.cur.seg);
        queued.push((BlockAddr(start), Payload::Data(summary_to_block(&summary))));
        queued.extend(
            entries.into_iter().enumerate().map(|(i, (_, p))| (BlockAddr(start + 1 + i as u64), p)),
        );
        queued
    }

    /// Whether `seg` is sealed but still queued for its media write.
    fn seal_pending(&self, seg: u32) -> bool {
        self.seal.as_ref().is_some_and(|s| s.holds(seg))
    }

    fn pick_free_segment(&self) -> LResult<u32> {
        let n = self.sb.nsegs;
        for off in 1..=n {
            let s = (self.cur.seg + off) % n;
            if s != self.cur.seg
                && self.usage[s as usize].live == 0
                && !self.protected_segs.contains(&s)
                && !self.seal_pending(s)
            {
                return Ok(s);
            }
        }
        Err(LayoutError::NoSpace)
    }

    /// Ensures free segments before a write burst, cleaning if needed.
    async fn ensure_space(&mut self) -> LResult<()> {
        if self.cleaning {
            return Ok(());
        }
        if self.free_segments() >= self.params.clean_low_water {
            return Ok(());
        }
        self.cleaning = true;
        let result = self.clean_until(self.params.clean_high_water).await;
        self.cleaning = false;
        result
    }

    /// Runs the cleaner until `target` segments are free (public for the
    /// cleaner ablation and the `lfs_cleaner` example).
    ///
    /// Cleaning consumes log space for the moved live blocks, so a round
    /// may not net-gain free segments; the loop gives up after several
    /// unproductive rounds rather than spinning.
    pub async fn clean_until(&mut self, target: u32) -> LResult<()> {
        let mut last_free = self.free_segments();
        let mut stalled = 0u32;
        while self.free_segments() < target {
            let Some(victim) = self.pick_victim() else { break };
            self.clean_segment(victim).await?;
            let now_free = self.free_segments();
            if now_free <= last_free {
                stalled += 1;
                if stalled >= 8 {
                    break;
                }
            } else {
                stalled = 0;
            }
            last_free = now_free;
        }
        Ok(())
    }

    /// Picks a cleaner victim under the configured policy.
    fn pick_victim(&self) -> Option<u32> {
        let cap = self.payload_per_seg() as u64 * BLOCK_SIZE as u64;
        let now = self.now_ns();
        let mut best: Option<(f64, u32)> = None;
        for (s, u) in self.usage.iter().enumerate() {
            let s = s as u32;
            // A sealed-but-unwritten segment cannot be cleaned: its
            // bytes are not on the media yet.
            if s == self.cur.seg || u.live == 0 || self.seal_pending(s) {
                continue;
            }
            // Never clean a segment holding live checkpoint metadata: the
            // on-disk checkpoint still references those addresses.
            let start = self.seg_start(s);
            let end = start + self.sb.seg_blocks as u64;
            if self.ckpt_meta.iter().any(|&a| a >= start && a < end) {
                continue;
            }
            let u_frac = (u.live as f64 / cap as f64).min(1.0);
            if u_frac >= 0.999 {
                continue; // Nothing to gain.
            }
            let score = match self.params.cleaner {
                CleanerPolicy::Greedy => 1.0 - u_frac,
                CleanerPolicy::CostBenefit => {
                    let age = (now.saturating_sub(u.mtime)) as f64 / 1e9 + 1.0;
                    (1.0 - u_frac) * age / (1.0 + u_frac)
                }
            };
            if best.map(|(b, _)| score > b).unwrap_or(true) {
                best = Some((score, s));
            }
        }
        best.map(|(_, s)| s)
    }

    /// Moves every live block out of `seg`, leaving it free.
    async fn clean_segment(&mut self, seg: u32) -> LResult<()> {
        let sp = self.handle.trace_span("layout:clean-seg");
        let r = self.clean_segment_inner(seg).await;
        self.handle.trace_exit(sp);
        r
    }

    async fn clean_segment_inner(&mut self, seg: u32) -> LResult<()> {
        let sum_payload = self.io.read_block(BlockAddr(self.seg_start(seg))).await?;
        self.stats.meta_reads += 1;
        let bytes =
            sum_payload.bytes().ok_or_else(|| LayoutError::Corrupt("summary lost".into()))?;
        let summary = summary_from_block(bytes)?;
        if summary.gen != self.sb.gen {
            // Stale summary from another format: nothing here is live.
            self.usage[seg as usize].live = 0;
            return Ok(());
        }
        for (idx, entry) in summary.entries.into_iter().enumerate() {
            let addr = self.payload_addr(seg, idx);
            match entry {
                SumEntry::Free | SumEntry::Imap | SumEntry::Usage => {
                    // Imap/usage here are from *old* checkpoints (live ones
                    // exclude the segment from victimhood): dead.
                }
                SumEntry::Data { ino, fblk } => {
                    self.clean_data_block(Ino(ino), fblk, addr).await?;
                }
                SumEntry::Indirect { ino } => {
                    self.clean_indirect_block(Ino(ino), addr).await?;
                }
                SumEntry::InodeBlock => {
                    self.clean_inode_block(addr).await?;
                }
            }
        }
        self.usage[seg as usize].live = 0;
        self.stats.segments_cleaned += 1;
        Ok(())
    }

    async fn clean_data_block(&mut self, ino: Ino, fblk: u64, addr: BlockAddr) -> LResult<()> {
        let Some(_) = self.imap_get(ino) else { return Ok(()) };
        let mut inode = self.get_inode(ino).await?;
        let mapped = self.map_block(&inode, fblk).await?;
        if mapped != Some(addr) {
            return Ok(()); // Superseded: dead.
        }
        let payload = self.io.read_block(addr).await?;
        self.stats.data_reads += 1;
        // Inner write path: the cleaner must not re-enter ensure_space.
        self.write_blocks_inner(&mut inode, vec![(fblk, payload)]).await?;
        self.relocated.insert(ino.0);
        self.stale_pointers.insert(ino.0);
        self.stats.cleaner_moved += 1;
        Ok(())
    }

    async fn clean_indirect_block(&mut self, ino: Ino, addr: BlockAddr) -> LResult<()> {
        let Some(_) = self.imap_get(ino) else { return Ok(()) };
        let mut inode = self.get_inode(ino).await?;
        if inode.indirect != addr {
            return Ok(());
        }
        let table = self.load_indirect(addr).await?;
        let new_addr = self.append_indirect(&table).await?;
        self.supersede(addr, BLOCK_SIZE);
        inode.indirect = new_addr;
        self.put_inode(&inode).await?;
        self.relocated.insert(ino.0);
        self.stale_pointers.insert(ino.0);
        self.stats.cleaner_moved += 1;
        Ok(())
    }

    async fn clean_inode_block(&mut self, addr: BlockAddr) -> LResult<()> {
        let payload = self.io.read_block(addr).await?;
        self.stats.meta_reads += 1;
        let bytes = payload
            .bytes()
            .ok_or_else(|| LayoutError::Corrupt("inode block lost".into()))?
            .to_vec();
        for slot in 0..INODES_PER_BLOCK {
            let off = slot * INODE_SIZE;
            let Some(inode) = Inode::from_bytes(&bytes[off..off + INODE_SIZE]) else {
                continue;
            };
            if self.imap_get(inode.ino) == Some((addr, slot)) {
                // Still the live copy: re-append it.
                let ino = inode.ino;
                self.put_inode(&inode).await?;
                self.relocated.insert(ino.0);
                self.stale_pointers.insert(ino.0);
                self.stats.cleaner_moved += 1;
            }
        }
        Ok(())
    }

    /// Loads an indirect pointer table (cached; log blocks are immutable).
    async fn load_indirect(&mut self, addr: BlockAddr) -> LResult<Vec<u64>> {
        if let Some(t) = self.indirect.get(&addr.0) {
            return Ok(t.clone());
        }
        // A staged indirect block (unflushed segment, or queued at the
        // background seal writer) is not on the media yet.
        if let Some(p) = self.staged_block(addr) {
            let bytes =
                p.bytes().ok_or_else(|| LayoutError::Corrupt("staged indirect lost".into()))?;
            let mut table = Vec::with_capacity(NINDIRECT);
            for i in 0..NINDIRECT {
                table.push(crate::types::codec::get_u64(bytes, i * 8));
            }
            self.cache_indirect(addr, table.clone());
            return Ok(table);
        }
        let payload = self.io.read_block(addr).await?;
        self.stats.meta_reads += 1;
        let bytes =
            payload.bytes().ok_or_else(|| LayoutError::Corrupt("indirect block lost".into()))?;
        let mut table = Vec::with_capacity(NINDIRECT);
        for i in 0..NINDIRECT {
            table.push(crate::types::codec::get_u64(bytes, i * 8));
        }
        self.cache_indirect(addr, table.clone());
        Ok(table)
    }

    fn cache_indirect(&mut self, addr: BlockAddr, table: Vec<u64>) {
        if self.indirect_fifo.len() >= INDIRECT_CACHE_CAP {
            let evict = self.indirect_fifo.remove(0);
            self.indirect.remove(&evict);
        }
        self.indirect_fifo.push(addr.0);
        self.indirect.insert(addr.0, table);
    }

    /// Appends a new indirect block holding `table`.
    async fn append_indirect(&mut self, table: &[u64]) -> LResult<BlockAddr> {
        let mut bytes = vec![0u8; BLOCK_SIZE as usize];
        for (i, v) in table.iter().enumerate() {
            crate::types::codec::put_u64(&mut bytes, i * 8, *v);
        }
        // The ino in the summary entry is patched by callers via the
        // entry they pass; here we only need the generic append.
        let addr = self.append_block(SumEntry::Indirect { ino: 0 }, Payload::Data(bytes)).await?;
        self.stats.meta_writes += 1;
        self.cache_indirect(addr, table.to_vec());
        Ok(addr)
    }

    /// Appends an inode into the current packed-inode block.
    async fn append_inode(&mut self, inode: &Inode) -> LResult<()> {
        // Release the previous location.
        if let Some((old_addr, _slot)) = self.imap_get(inode.ino) {
            self.supersede(old_addr, INODE_SIZE as u32);
        }
        // Overwrite in the open block if this ino is already there.
        let cur_seg = self.cur.seg;
        if let Some(open) = &mut self.cur.open_inode {
            if let Some(slot) = open.inos.iter().position(|&i| i == inode.ino.0) {
                let off = slot * INODE_SIZE;
                open.bytes[off..off + INODE_SIZE].copy_from_slice(&inode.to_bytes());
                let slot_idx = open.slot_idx;
                let addr = self.payload_addr(cur_seg, slot_idx);
                self.imap_set(inode.ino, imap_pack(addr, slot));
                self.usage_add(cur_seg, INODE_SIZE as u32);
                return Ok(());
            }
        }
        let need_new = match &self.cur.open_inode {
            None => true,
            Some(open) => open.inos.len() >= INODES_PER_BLOCK,
        };
        if need_new {
            // Finalize the previous open inode block first: its bytes
            // must land in its reserved entry or they would flush empty.
            if let Some(old) = self.cur.open_inode.take() {
                self.cur.entries[old.slot_idx].1 = Payload::Data(old.bytes);
            }
            // Reserve a payload slot; bytes are patched at flush time.
            let before_seg = self.cur.seg;
            let _addr = self.append_block(SumEntry::InodeBlock, Payload::Data(Vec::new())).await?;
            // `append_block` may have rolled the segment; the new block
            // lives in the (possibly new) current segment's last slot.
            debug_assert!(self.cur.seg == before_seg || self.cur.entries.len() == 1);
            let slot_idx = self.cur.entries.len() - 1;
            self.cur.open_inode = Some(OpenInodeBlock {
                slot_idx,
                inos: Vec::new(),
                bytes: vec![0u8; BLOCK_SIZE as usize],
            });
            self.stats.meta_writes += 1;
        }
        let cur_seg = self.cur.seg;
        let open = self.cur.open_inode.as_mut().expect("just ensured");
        let slot = open.inos.len();
        open.inos.push(inode.ino.0);
        let off = slot * INODE_SIZE;
        open.bytes[off..off + INODE_SIZE].copy_from_slice(&inode.to_bytes());
        let slot_idx = open.slot_idx;
        let addr = self.payload_addr(cur_seg, slot_idx);
        self.imap_set(inode.ino, imap_pack(addr, slot));
        self.usage_add(cur_seg, INODE_SIZE as u32);
        self.stats.meta_writes += 1;
        Ok(())
    }

    /// Reads the slot-`slot` inode from the block at `addr`, consulting
    /// the unflushed open inode block first.
    async fn read_inode_at(&mut self, addr: BlockAddr, slot: usize) -> LResult<Inode> {
        if let Some(open) = &self.cur.open_inode {
            if self.payload_addr(self.cur.seg, open.slot_idx) == addr {
                let off = slot * INODE_SIZE;
                return Inode::from_bytes(&open.bytes[off..off + INODE_SIZE])
                    .ok_or_else(|| LayoutError::Corrupt("open inode slot".into()));
            }
        }
        // The block may still be staged: in the unflushed segment, or in
        // one queued at the background seal writer.
        if let Some(p) = self.staged_block(addr) {
            if let Some(bytes) = p.bytes() {
                let off = slot * INODE_SIZE;
                if bytes.len() < off + INODE_SIZE {
                    return Err(LayoutError::Corrupt(format!(
                        "staged inode block at {addr} too short"
                    )));
                }
                return Inode::from_bytes(&bytes[off..off + INODE_SIZE])
                    .ok_or_else(|| LayoutError::Corrupt("staged inode slot".into()));
            }
        }
        let payload = self.io.read_block(addr).await?;
        self.stats.meta_reads += 1;
        let bytes =
            payload.bytes().ok_or_else(|| LayoutError::Corrupt("inode block lost".into()))?;
        let off = slot * INODE_SIZE;
        Inode::from_bytes(&bytes[off..off + INODE_SIZE])
            .ok_or_else(|| LayoutError::Corrupt(format!("bad inode at {addr}/{slot}")))
    }

    /// Takes a checkpoint: push imap + usage into the log, then write the
    /// alternating checkpoint region.
    async fn checkpoint(&mut self) -> LResult<()> {
        let sp = self.handle.trace_span("layout:checkpoint");
        let r = self.checkpoint_inner().await;
        self.handle.trace_exit(sp);
        r
    }

    async fn checkpoint_inner(&mut self) -> LResult<()> {
        // Seal the current segment; appends below go to a fresh one.
        if !self.cur.entries.is_empty() {
            self.roll_segment().await?;
        }
        // Supersede the previous checkpoint's metadata blocks.
        let old = std::mem::take(&mut self.ckpt_meta);
        for a in old {
            self.supersede(BlockAddr(a), BLOCK_SIZE);
        }
        // Append imap blocks.
        let mut imap_addrs = Vec::new();
        for block in imap_to_blocks(&self.imap) {
            let addr = self.append_block(SumEntry::Imap, Payload::Data(block)).await?;
            self.stats.meta_writes += 1;
            imap_addrs.push(addr.0);
        }
        // Pre-account the usage blocks we are about to append so the
        // serialized table includes them (approximately; see module docs).
        let n_usage = self.usage.len().div_ceil(structs::USAGE_PER_BLOCK);
        let mut projected = self.usage.clone();
        let mut slots_left = self.payload_per_seg() as usize - self.cur.entries.len();
        let mut seg = self.cur.seg as usize;
        for _ in 0..n_usage {
            if slots_left == 0 {
                // Will roll into some free segment; approximate with the
                // next free one.
                seg = self.pick_free_segment()? as usize;
                slots_left = self.payload_per_seg() as usize;
            }
            projected[seg].live += BLOCK_SIZE;
            slots_left -= 1;
        }
        let mut usage_addrs = Vec::new();
        for block in usage_to_blocks(&projected) {
            let addr = self.append_block(SumEntry::Usage, Payload::Data(block)).await?;
            self.stats.meta_writes += 1;
            usage_addrs.push(addr.0);
        }
        // Metadata must be durable before the checkpoint references it —
        // including any segments still queued at the background writer.
        self.roll_segment().await?;
        self.drain_seals().await?;
        self.ckpt_meta = imap_addrs.iter().chain(usage_addrs.iter()).copied().collect();
        self.ckpt_seq += 1;
        let ckpt = Checkpoint {
            seq: self.ckpt_seq,
            next_ino: self.next_ino,
            gen: self.sb.gen,
            epoch: self.epoch,
            log_seq: self.log_seq,
            imap_addrs,
            usage_addrs,
        };
        let region = CKPT_ADDRS[(self.ckpt_seq % 2) as usize];
        self.io.write_block(region, Payload::Data(ckpt.to_block())).await?;
        self.stats.meta_writes += 1;
        self.stats.checkpoints += 1;
        Ok(())
    }
}

impl StorageLayout for LfsLayout {
    fn name(&self) -> &'static str {
        "lfs"
    }

    async fn format(&mut self) -> LResult<()> {
        // The format generation stamps every summary and checkpoint so
        // stale structures from an earlier format can never be trusted
        // (notably: the *other* alternating checkpoint region).
        self.sb.gen = format_gen(self.now_ns(), self.sb.nsegs, self.sb.seg_blocks);
        self.io.write_block(structs::SB_ADDR, Payload::Data(self.sb.to_block())).await?;
        self.imap = vec![IMAP_NONE; 2];
        self.usage = vec![SegUsage::default(); self.sb.nsegs as usize];
        self.next_ino = 2;
        self.ckpt_seq = 0;
        self.epoch = 1;
        self.log_seq = 0;
        self.ckpt_meta.clear();
        self.cur = SegBuilder { seg: 0, entries: Vec::new(), open_inode: None };
        self.mounted = true;
        // Root directory.
        let mut root = Inode::new(Ino::ROOT, FileKind::Directory);
        root.mtime = self.now_ns();
        self.append_inode(&root).await?;
        self.checkpoint().await?;
        Ok(())
    }

    async fn mount(&mut self) -> LResult<()> {
        self.load_state().await?;
        // Seal the new epoch immediately: post-mount segments are then
        // distinguishable from any stale pre-mount ones, and the next
        // crash rolls forward from here.
        self.checkpoint().await?;
        Ok(())
    }

    async fn recover(&mut self) -> LResult<RecoveryStats> {
        let ckpt = self.load_state().await?;
        let mut stats = RecoveryStats::default();

        // 1. Scan the log for intact post-checkpoint segments. The
        //    summary checksum plus payload-before-summary write ordering
        //    make "summary parses and is young" imply "segment intact".
        let mut young: Vec<(u64, u32, Vec<SumEntry>)> = Vec::new();
        for seg in 0..self.sb.nsegs {
            let addr = BlockAddr(self.seg_start(seg));
            let Ok(payload) = self.io.read_block(addr).await else { continue };
            let Some(bytes) = payload.bytes() else { continue };
            let Ok(summary) = summary_from_block(bytes) else { continue };
            if summary.gen != self.sb.gen
                || summary.epoch != ckpt.epoch
                || summary.seq <= ckpt.log_seq
            {
                continue;
            }
            young.push((summary.seq, seg, summary.entries));
        }
        young.sort_unstable_by_key(|&(seq, _, _)| seq);
        stats.rolled_segments = young.len() as u64;

        // 2. Roll forward in log order: inode blocks update the inode
        //    map (later wins); data blocks are remembered so pointers
        //    the crash separated from their inode append can be patched.
        let mut last_data: BTreeMap<(u64, u64), BlockAddr> = BTreeMap::new();
        for (seq, seg, entries) in &young {
            self.log_seq = self.log_seq.max(*seq);
            for (idx, entry) in entries.iter().enumerate() {
                let addr = self.payload_addr(*seg, idx);
                match entry {
                    SumEntry::InodeBlock => {
                        let Ok(payload) = self.io.read_block(addr).await else { continue };
                        self.stats.meta_reads += 1;
                        let Some(bytes) = payload.bytes() else { continue };
                        for slot in 0..INODES_PER_BLOCK {
                            let off = slot * INODE_SIZE;
                            if bytes.len() < off + INODE_SIZE {
                                break;
                            }
                            let Some(inode) = Inode::from_bytes(&bytes[off..off + INODE_SIZE])
                            else {
                                continue;
                            };
                            self.imap_set(inode.ino, imap_pack(addr, slot));
                            self.next_ino = self.next_ino.max(inode.ino.0 + 1);
                            stats.recovered_inodes += 1;
                        }
                    }
                    SumEntry::Data { ino, fblk } => {
                        last_data.insert((*ino, *fblk), addr);
                    }
                    SumEntry::Indirect { .. }
                    | SumEntry::Imap
                    | SumEntry::Usage
                    | SumEntry::Free => {}
                }
            }
        }

        // 3. Rebuild the segment-usage table from the recovered metadata
        //    so free-segment selection cannot overwrite rolled state.
        //    Young segments stay off-limits for recovery's own appends:
        //    a segment holding only orphan data blocks (inode append
        //    lost) charges nothing yet looks free — opening it would
        //    overwrite the very blocks step 4 patches pointers to.
        self.rebuild_usage().await?;
        self.protected_segs = young.iter().map(|&(_, seg, _)| seg).collect();
        self.cur = SegBuilder { seg: 0, entries: Vec::new(), open_inode: None };
        self.cur.seg = self.pick_free_segment()?;
        self.mounted = true;

        // 4. Patch pointers for data blocks whose inode append the crash
        //    cut off (only possible in the tail of the young log).
        let mut by_ino: BTreeMap<u64, Vec<(u64, BlockAddr)>> = BTreeMap::new();
        for ((ino, fblk), addr) in last_data {
            by_ino.entry(ino).or_default().push((fblk, addr));
        }
        for (ino, blocks) in by_ino {
            if self.imap_get(Ino(ino)).is_none() {
                continue; // No durable inode at all: the file never made it.
            }
            let Ok(mut inode) = self.get_inode(Ino(ino)).await else { continue };
            let mut table: Option<Vec<u64>> = None;
            let mut table_dirty = false;
            let mut inode_dirty = false;
            for (fblk, addr) in blocks {
                let Some(slot) = block_slot(fblk) else { continue };
                if self.map_block(&inode, fblk).await? == Some(addr) {
                    continue; // The inode append made it: nothing to patch.
                }
                match slot {
                    BlockSlot::Direct(i) => {
                        self.supersede(inode.direct[i], BLOCK_SIZE);
                        inode.direct[i] = addr;
                    }
                    BlockSlot::Indirect(s) => {
                        if table.is_none() {
                            table = Some(if inode.indirect.is_some() {
                                self.load_indirect(inode.indirect).await?
                            } else {
                                vec![BlockAddr::NONE.0; NINDIRECT]
                            });
                        }
                        let t = table.as_mut().expect("just set");
                        if t[s] != BlockAddr::NONE.0 {
                            self.supersede(BlockAddr(t[s]), BLOCK_SIZE);
                        }
                        t[s] = addr.0;
                        table_dirty = true;
                    }
                }
                self.usage_add(self.seg_of(addr), BLOCK_SIZE);
                // The write implied the file covered this block.
                inode.size = inode.size.max((fblk + 1) * BLOCK_SIZE as u64);
                inode_dirty = true;
                stats.patched_blocks += 1;
            }
            if table_dirty {
                let t = table.expect("dirty implies loaded");
                let new_addr = self.append_indirect(&t).await?;
                self.supersede(inode.indirect, BLOCK_SIZE);
                inode.indirect = new_addr;
            }
            if inode_dirty {
                self.append_inode(&inode).await?;
            }
        }

        // 5. Seal recovery: the checkpoint makes it durable and bumps
        //    the log past everything replayed, so recovery is idempotent.
        //    Patched blocks are charged now, so the young segments that
        //    still matter have live > 0; the rest are genuinely free.
        self.checkpoint().await?;
        self.protected_segs.clear();
        Ok(stats)
    }

    async fn unmount(&mut self) -> LResult<()> {
        self.checkpoint().await?;
        self.mounted = false;
        Ok(())
    }

    async fn sync(&mut self) -> LResult<()> {
        self.checkpoint().await
    }

    async fn flush_staged(&mut self) -> LResult<()> {
        // Seal the current (possibly partial) segment to the media; the
        // roll-forward path recovers it without needing a checkpoint.
        if !self.cur.entries.is_empty() {
            self.roll_segment().await?;
        }
        // Media durability, not just seal: wait out the background
        // writer so "staging flushed" means "on the platter".
        self.drain_seals().await?;
        Ok(())
    }

    fn alloc_ino(&mut self, kind: FileKind, now_ns: u64) -> LResult<Inode> {
        let ino = Ino(self.next_ino);
        self.next_ino += 1;
        let mut inode = Inode::new(ino, kind);
        inode.mtime = now_ns;
        Ok(inode)
    }

    async fn get_inode(&mut self, ino: Ino) -> LResult<Inode> {
        let (addr, slot) = self.imap_get(ino).ok_or(LayoutError::BadInode(ino))?;
        self.read_inode_at(addr, slot).await
    }

    async fn put_inode(&mut self, inode: &Inode) -> LResult<()> {
        self.append_inode(inode).await
    }

    async fn free_inode(&mut self, ino: Ino) -> LResult<()> {
        let inode = self.get_inode(ino).await?;
        // Release data blocks.
        for d in inode.direct {
            self.supersede(d, BLOCK_SIZE);
        }
        if inode.indirect.is_some() {
            let table = self.load_indirect(inode.indirect).await?;
            for v in table {
                if v != BlockAddr::NONE.0 {
                    self.supersede(BlockAddr(v), BLOCK_SIZE);
                }
            }
            self.supersede(inode.indirect, BLOCK_SIZE);
        }
        if let Some((addr, _slot)) = self.imap_get(ino) {
            self.supersede(addr, INODE_SIZE as u32);
        }
        self.imap_set(ino, IMAP_NONE);
        Ok(())
    }

    async fn map_block(&mut self, inode: &Inode, blk: u64) -> LResult<Option<BlockAddr>> {
        match block_slot(blk).ok_or(LayoutError::FileTooBig(blk))? {
            BlockSlot::Direct(i) => {
                Ok(if inode.direct[i].is_some() { Some(inode.direct[i]) } else { None })
            }
            BlockSlot::Indirect(s) => {
                if !inode.indirect.is_some() {
                    return Ok(None);
                }
                let table = self.load_indirect(inode.indirect).await?;
                let v = table[s];
                Ok(if v == BlockAddr::NONE.0 { None } else { Some(BlockAddr(v)) })
            }
        }
    }

    fn staged_image(&self) -> Vec<(BlockAddr, Payload)> {
        self.staged_writes()
    }

    fn staged_block(&self, addr: BlockAddr) -> Option<Payload> {
        let seg_start = self.seg_start(self.cur.seg);
        if addr.0 > seg_start && addr.0 <= seg_start + self.payload_per_seg() as u64 {
            let idx = (addr.0 - seg_start - 1) as usize;
            if idx < self.cur.entries.len() {
                // The open inode block's entry holds a placeholder; its
                // live bytes are in `open_inode`.
                if let Some(open) = &self.cur.open_inode {
                    if open.slot_idx == idx {
                        return Some(Payload::Data(open.bytes.clone()));
                    }
                }
                return Some(self.cur.entries[idx].1.clone());
            }
        }
        // Sealed segments still queued at the background writer serve
        // reads from staging until their media write lands.
        if let Some(seal) = &self.seal {
            for p in seal.pending.borrow().iter() {
                if addr.0 > p.start && addr.0 <= p.start + p.payloads.len() as u64 {
                    return Some(p.payloads[(addr.0 - p.start - 1) as usize].clone());
                }
            }
        }
        None
    }

    async fn read_file_block(&mut self, inode: &Inode, blk: u64) -> LResult<Option<Payload>> {
        let Some(addr) = self.map_block(inode, blk).await? else { return Ok(None) };
        // Serve from staging if the block has not reached the media yet
        // (the open segment, or one queued at the background writer).
        if let Some(p) = self.staged_block(addr) {
            return Ok(Some(p));
        }
        self.stats.data_reads += 1;
        Ok(Some(self.io.read_block(addr).await?))
    }

    async fn write_file_blocks(
        &mut self,
        inode: &mut Inode,
        blocks: Vec<(u64, Payload)>,
    ) -> LResult<()> {
        let sp = self.handle.trace_span("layout:write");
        self.ensure_space().await?;
        let r = self.write_blocks_inner(inode, blocks).await;
        self.handle.trace_exit(sp);
        r
    }

    async fn truncate(&mut self, inode: &mut Inode, new_blocks: u64) -> LResult<()> {
        self.truncate_inner(inode, new_blocks).await
    }

    fn allocated_inos(&self) -> Vec<Ino> {
        (0..self.imap.len() as u64).map(Ino).filter(|&i| self.imap_get(i).is_some()).collect()
    }

    fn stats(&self) -> LayoutStats {
        self.stats
    }

    fn take_relocated(&mut self) -> Vec<Ino> {
        std::mem::take(&mut self.relocated).into_iter().map(Ino).collect()
    }

    fn driver(&self) -> &DiskDriver {
        self.io.driver()
    }
}

/// Deterministic format-generation stamp (a function of format time and
/// geometry, so identical sim histories stay bit-identical).
fn format_gen(now_ns: u64, nsegs: u32, seg_blocks: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in [now_ns, nsegs as u64, seg_blocks as u64, 0x1f5_9e37] {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

impl LfsLayout {
    /// Loads superblock + newest matching checkpoint and restores the
    /// in-memory state, entering a fresh mount epoch. Shared by `mount`
    /// and `recover`; neither trusts anything not reachable from the
    /// checkpoint until recovery says otherwise.
    async fn load_state(&mut self) -> LResult<Checkpoint> {
        let sb_payload = self.io.read_block(structs::SB_ADDR).await?;
        let sb_bytes = sb_payload.bytes().ok_or(LayoutError::NotFormatted)?;
        let sb = SuperBlock::from_block(sb_bytes)?;
        if sb.seg_blocks != self.sb.seg_blocks || sb.nsegs != self.sb.nsegs {
            return Err(LayoutError::Corrupt("superblock geometry mismatch".into()));
        }
        self.sb.gen = sb.gen;
        // Pick the newer valid checkpoint of this format generation; a
        // stale region surviving from a previous format loses here.
        let mut best: Option<Checkpoint> = None;
        for region in CKPT_ADDRS {
            let payload = self.io.read_block(region).await?;
            if let Some(bytes) = payload.bytes() {
                if let Some(c) = Checkpoint::from_block(bytes) {
                    if c.gen == sb.gen && best.as_ref().map(|b| c.seq > b.seq).unwrap_or(true) {
                        best = Some(c);
                    }
                }
            }
        }
        let ckpt = best.ok_or(LayoutError::NotFormatted)?;
        let mut imap_blocks = Vec::new();
        for &a in &ckpt.imap_addrs {
            let p = self.io.read_block(BlockAddr(a)).await?;
            self.stats.meta_reads += 1;
            imap_blocks
                .push(p.bytes().ok_or_else(|| LayoutError::Corrupt("imap lost".into()))?.to_vec());
        }
        let mut usage_blocks = Vec::new();
        for &a in &ckpt.usage_addrs {
            let p = self.io.read_block(BlockAddr(a)).await?;
            self.stats.meta_reads += 1;
            usage_blocks
                .push(p.bytes().ok_or_else(|| LayoutError::Corrupt("usage lost".into()))?.to_vec());
        }
        self.imap = imap_from_blocks(&imap_blocks);
        self.usage = usage_from_blocks(&usage_blocks);
        if self.usage.len() != self.sb.nsegs as usize {
            return Err(LayoutError::Corrupt("usage table size mismatch".into()));
        }
        self.next_ino = ckpt.next_ino;
        self.ckpt_seq = ckpt.seq;
        self.epoch = ckpt.epoch + 1;
        self.log_seq = ckpt.log_seq;
        self.ckpt_meta = ckpt.imap_addrs.iter().chain(ckpt.usage_addrs.iter()).copied().collect();
        self.cur = SegBuilder { seg: 0, entries: Vec::new(), open_inode: None };
        self.cur.seg = self.pick_free_segment()?;
        self.indirect.clear();
        self.indirect_fifo.clear();
        self.mounted = true;
        Ok(ckpt)
    }

    /// Recomputes per-segment live-byte counts from the inode map (the
    /// fsck-style ground truth), dropping unreadable inodes on the way.
    async fn rebuild_usage(&mut self) -> LResult<()> {
        let seg_limit = DATA_START + self.sb.nsegs as u64 * self.sb.seg_blocks as u64;
        for u in &mut self.usage {
            u.live = 0;
        }
        let mut charges: Vec<(u64, u32)> = Vec::new();
        for &a in &self.ckpt_meta {
            charges.push((a, BLOCK_SIZE));
        }
        let inos: Vec<u64> =
            (0..self.imap.len() as u64).filter(|&i| self.imap_get(Ino(i)).is_some()).collect();
        for ino in inos {
            let (iaddr, _slot) = self.imap_get(Ino(ino)).expect("filtered above");
            let inode = match self.get_inode(Ino(ino)).await {
                Ok(i) => i,
                Err(_) => {
                    // Unreadable inode: drop it rather than poison mounts.
                    self.imap_set(Ino(ino), IMAP_NONE);
                    continue;
                }
            };
            charges.push((iaddr.0, INODE_SIZE as u32));
            for d in inode.direct {
                if d.is_some() {
                    charges.push((d.0, BLOCK_SIZE));
                }
            }
            if inode.indirect.is_some() {
                charges.push((inode.indirect.0, BLOCK_SIZE));
                if let Ok(table) = self.load_indirect(inode.indirect).await {
                    for v in table {
                        if v != BlockAddr::NONE.0 {
                            charges.push((v, BLOCK_SIZE));
                        }
                    }
                }
            }
        }
        let now = self.handle.now().as_nanos();
        for (addr, bytes) in charges {
            if addr >= DATA_START && addr < seg_limit {
                let seg = self.seg_of(BlockAddr(addr)) as usize;
                let u = &mut self.usage[seg];
                u.live += bytes;
                if u.mtime == 0 {
                    u.mtime = now;
                }
            }
        }
        Ok(())
    }

    /// Refreshes a caller-held inode's block pointers from the log's
    /// authoritative copy. The cleaner relocates blocks behind engines
    /// that cache inodes in memory; superseding or loading through such
    /// stale pointers would touch freed (possibly reused) segments.
    /// Size/mtime stay the caller's — only the log knows pointers, only
    /// the caller knows logical state.
    /// Callers must not fork independent copies of one inode across a
    /// cleaning: the marker is consumed by the first reconciling writer.
    async fn reconcile_pointers(&mut self, inode: &mut Inode) {
        if !self.stale_pointers.remove(&inode.ino.0) {
            return;
        }
        if let Some((addr, slot)) = self.imap_get(inode.ino) {
            if let Ok(current) = self.read_inode_at(addr, slot).await {
                inode.direct = current.direct;
                inode.indirect = current.indirect;
            }
        }
    }

    /// Append-path shared by the public write and the cleaner (which
    /// must not re-enter `ensure_space`).
    async fn write_blocks_inner(
        &mut self,
        inode: &mut Inode,
        mut blocks: Vec<(u64, Payload)>,
    ) -> LResult<()> {
        self.reconcile_pointers(inode).await;
        blocks.sort_by_key(|(b, _)| *b);
        let ino = inode.ino;
        // Load the current indirect table once if any indirect slot is hit.
        let mut table: Option<Vec<u64>> = None;
        let mut table_dirty = false;
        for (blk, payload) in blocks {
            let slot = block_slot(blk).ok_or(LayoutError::FileTooBig(blk))?;
            let addr = self.append_block(SumEntry::Data { ino: ino.0, fblk: blk }, payload).await?;
            self.stats.data_writes += 1;
            match slot {
                BlockSlot::Direct(i) => {
                    self.supersede(inode.direct[i], BLOCK_SIZE);
                    inode.direct[i] = addr;
                }
                BlockSlot::Indirect(s) => {
                    if table.is_none() {
                        table = Some(if inode.indirect.is_some() {
                            self.load_indirect(inode.indirect).await?
                        } else {
                            vec![BlockAddr::NONE.0; NINDIRECT]
                        });
                    }
                    let t = table.as_mut().expect("just set");
                    if t[s] != BlockAddr::NONE.0 {
                        self.supersede(BlockAddr(t[s]), BLOCK_SIZE);
                    }
                    t[s] = addr.0;
                    table_dirty = true;
                }
            }
        }
        if table_dirty {
            let t = table.expect("dirty implies loaded");
            let new_addr = self.append_indirect(&t).await?;
            self.supersede(inode.indirect, BLOCK_SIZE);
            inode.indirect = new_addr;
        }
        inode.mtime = self.now_ns();
        self.append_inode(inode).await?;
        Ok(())
    }

    async fn truncate_inner(&mut self, inode: &mut Inode, new_blocks: u64) -> LResult<()> {
        self.reconcile_pointers(inode).await;
        let old_blocks = inode.blocks();
        for blk in new_blocks..old_blocks {
            match block_slot(blk).ok_or(LayoutError::FileTooBig(blk))? {
                BlockSlot::Direct(i) => {
                    self.supersede(inode.direct[i], BLOCK_SIZE);
                    inode.direct[i] = BlockAddr::NONE;
                }
                BlockSlot::Indirect(_) => {}
            }
        }
        if inode.indirect.is_some() {
            let keep_indirect = new_blocks > crate::types::NDIRECT as u64;
            let table = self.load_indirect(inode.indirect).await?;
            let first_dead = new_blocks.saturating_sub(crate::types::NDIRECT as u64) as usize;
            let mut new_table = table.clone();
            let mut changed = false;
            for (s, v) in table.iter().enumerate() {
                if s >= first_dead && *v != BlockAddr::NONE.0 {
                    self.supersede(BlockAddr(*v), BLOCK_SIZE);
                    new_table[s] = BlockAddr::NONE.0;
                    changed = true;
                }
            }
            if !keep_indirect {
                self.supersede(inode.indirect, BLOCK_SIZE);
                inode.indirect = BlockAddr::NONE;
            } else if changed {
                let addr = self.append_indirect(&new_table).await?;
                self.supersede(inode.indirect, BLOCK_SIZE);
                inode.indirect = addr;
            }
        }
        inode.size = new_blocks * BLOCK_SIZE as u64;
        inode.mtime = self.now_ns();
        self.append_inode(inode).await?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnp_disk::{sim_disk_driver, CLook, Hp97560};
    use cnp_sim::{Sim, SimTime};

    fn run_lfs<F, Fut>(f: F)
    where
        F: FnOnce(cnp_sim::Handle, LfsLayout) -> Fut + 'static,
        Fut: std::future::Future<Output = ()> + 'static,
    {
        let sim = Sim::new(11);
        let h = sim.handle();
        let driver = sim_disk_driver(&h, "d0", Box::new(Hp97560::new()), Box::new(CLook));
        let driver2 = driver.clone();
        let layout = LfsLayout::new(&h, driver, LfsParams::default());
        let h2 = h.clone();
        let done = std::rc::Rc::new(std::cell::Cell::new(false));
        let done2 = done.clone();
        h.spawn("test", async move {
            f(h2, layout).await;
            done2.set(true);
            driver2.shutdown();
        });
        sim.run_until(SimTime::from_nanos(u64::MAX / 2));
        assert!(done.get(), "test body did not complete");
    }

    fn data_block(tag: u8) -> Payload {
        Payload::Data(vec![tag; BLOCK_SIZE as usize])
    }

    #[test]
    fn map_extents_coalesces_the_log_and_reports_holes() {
        run_lfs(|_h, mut lfs| async move {
            lfs.format().await.unwrap();
            let mut f = lfs.alloc_ino(FileKind::Regular, 1).unwrap();
            // Appends land consecutively in the current segment.
            lfs.write_file_blocks(&mut f, (0..4).map(|b| (b, data_block(b as u8))).collect())
                .await
                .unwrap();
            f.size = 8 * BLOCK_SIZE as u64;
            let extents = lfs.map_extents(&f, 0, 8).await.unwrap();
            // One mapped run of 4 (consecutive log addresses) + one hole
            // run of 4.
            assert_eq!(extents.len(), 2, "{extents:?}");
            assert_eq!(extents[0].start_blk, 0);
            assert_eq!(extents[0].len, 4);
            assert!(extents[0].addr.is_some());
            assert_eq!(extents[1], crate::layout::Extent { start_blk: 4, len: 4, addr: None });
            // Per-block mapping agrees with the extent view.
            for e in &extents {
                for i in 0..e.len as u64 {
                    let got = lfs.map_block(&f, e.start_blk + i).await.unwrap();
                    assert_eq!(got, e.addr.map(|a| BlockAddr(a.0 + i)));
                }
            }
            // An empty range maps to no extents.
            assert!(lfs.map_extents(&f, 3, 0).await.unwrap().is_empty());
        });
    }

    #[test]
    fn format_creates_root() {
        run_lfs(|_h, mut lfs| async move {
            lfs.format().await.unwrap();
            let root = lfs.get_inode(Ino::ROOT).await.unwrap();
            assert_eq!(root.kind, FileKind::Directory);
            assert_eq!(root.size, 0);
        });
    }

    #[test]
    fn write_read_direct_blocks() {
        run_lfs(|_h, mut lfs| async move {
            lfs.format().await.unwrap();
            let mut f = lfs.alloc_ino(FileKind::Regular, 1).unwrap();
            f.size = 3 * BLOCK_SIZE as u64;
            lfs.write_file_blocks(
                &mut f,
                vec![(0, data_block(1)), (1, data_block(2)), (2, data_block(3))],
            )
            .await
            .unwrap();
            for (blk, tag) in [(0u64, 1u8), (1, 2), (2, 3)] {
                let p = lfs.read_file_block(&f, blk).await.unwrap().unwrap();
                assert_eq!(p.bytes().unwrap()[0], tag, "block {blk}");
            }
            assert!(lfs.read_file_block(&f, 3).await.unwrap().is_none());
        });
    }

    #[test]
    fn write_read_indirect_blocks() {
        run_lfs(|_h, mut lfs| async move {
            lfs.format().await.unwrap();
            let mut f = lfs.alloc_ino(FileKind::Regular, 1).unwrap();
            // Blocks 12..20 live behind the indirect pointer.
            let blocks: Vec<(u64, Payload)> = (12..20).map(|b| (b, data_block(b as u8))).collect();
            f.size = 20 * BLOCK_SIZE as u64;
            lfs.write_file_blocks(&mut f, blocks).await.unwrap();
            assert!(f.indirect.is_some());
            let p = lfs.read_file_block(&f, 15).await.unwrap().unwrap();
            assert_eq!(p.bytes().unwrap()[0], 15);
            // Hole below the indirect range.
            assert!(lfs.read_file_block(&f, 5).await.unwrap().is_none());
        });
    }

    #[test]
    fn overwrite_supersedes_old_location() {
        run_lfs(|_h, mut lfs| async move {
            lfs.format().await.unwrap();
            let mut f = lfs.alloc_ino(FileKind::Regular, 1).unwrap();
            f.size = BLOCK_SIZE as u64;
            lfs.write_file_blocks(&mut f, vec![(0, data_block(1))]).await.unwrap();
            let a1 = lfs.map_block(&f, 0).await.unwrap().unwrap();
            lfs.write_file_blocks(&mut f, vec![(0, data_block(2))]).await.unwrap();
            let a2 = lfs.map_block(&f, 0).await.unwrap().unwrap();
            assert_ne!(a1, a2, "LFS must relocate on overwrite");
            let p = lfs.read_file_block(&f, 0).await.unwrap().unwrap();
            assert_eq!(p.bytes().unwrap()[0], 2);
        });
    }

    #[test]
    fn remount_recovers_checkpointed_state() {
        let sim = Sim::new(13);
        let h = sim.handle();
        let driver = sim_disk_driver(&h, "d0", Box::new(Hp97560::new()), Box::new(CLook));
        let shutdown_driver = driver.clone();
        let done = std::rc::Rc::new(std::cell::Cell::new(false));
        let done2 = done.clone();
        let h2 = h.clone();
        h.spawn("test", async move {
            let mut lfs = LfsLayout::new(&h2, driver.clone(), LfsParams::default());
            lfs.format().await.unwrap();
            let mut f = lfs.alloc_ino(FileKind::Regular, 1).unwrap();
            f.size = 2 * BLOCK_SIZE as u64;
            lfs.write_file_blocks(&mut f, vec![(0, data_block(7)), (1, data_block(8))])
                .await
                .unwrap();
            let ino = f.ino;
            lfs.unmount().await.unwrap();
            // Second instance: mount from disk.
            let mut lfs2 = LfsLayout::new(&h2, driver, LfsParams::default());
            lfs2.mount().await.unwrap();
            let got = lfs2.get_inode(ino).await.unwrap();
            assert_eq!(got.size, 2 * BLOCK_SIZE as u64);
            let p = lfs2.read_file_block(&got, 1).await.unwrap().unwrap();
            assert_eq!(p.bytes().unwrap()[0], 8);
            let root = lfs2.get_inode(Ino::ROOT).await.unwrap();
            assert_eq!(root.kind, FileKind::Directory);
            done2.set(true);
            shutdown_driver.shutdown();
        });
        sim.run_until(SimTime::from_nanos(u64::MAX / 2));
        assert!(done.get(), "test body did not complete");
    }

    #[test]
    fn free_inode_releases_space() {
        run_lfs(|_h, mut lfs| async move {
            lfs.format().await.unwrap();
            let live_before: u32 = lfs.usage.iter().map(|u| u.live).sum();
            let mut f = lfs.alloc_ino(FileKind::Regular, 1).unwrap();
            f.size = 4 * BLOCK_SIZE as u64;
            lfs.write_file_blocks(&mut f, (0..4).map(|b| (b, data_block(b as u8))).collect())
                .await
                .unwrap();
            let ino = f.ino;
            lfs.free_inode(ino).await.unwrap();
            assert!(matches!(lfs.get_inode(ino).await, Err(LayoutError::BadInode(_))));
            let live_after: u32 = lfs.usage.iter().map(|u| u.live).sum();
            // All data released; only metadata churn (inode copies) remains.
            assert!(
                live_after <= live_before + 3 * INODE_SIZE as u32,
                "live {live_after} vs {live_before}"
            );
        });
    }

    #[test]
    fn segment_rolls_and_cleaner_frees_space() {
        let sim = Sim::new(17);
        let h = sim.handle();
        let driver = sim_disk_driver(&h, "d0", Box::new(Hp97560::new()), Box::new(CLook));
        let shutdown_driver = driver.clone();
        let done = std::rc::Rc::new(std::cell::Cell::new(false));
        let done2 = done.clone();
        let h2 = h.clone();
        h.spawn("test", async move {
            // Small segments so we roll quickly.
            let params = LfsParams { seg_blocks: 8, ..LfsParams::default() };
            let mut lfs = LfsLayout::new(&h2, driver, params);
            lfs.format().await.unwrap();
            // Interleave two files so every segment is half file A, half
            // file B; deleting B leaves many half-live victim segments.
            let mut fa = lfs.alloc_ino(FileKind::Regular, 1).unwrap();
            let mut fb = lfs.alloc_ino(FileKind::Regular, 1).unwrap();
            fa.size = 8 * BLOCK_SIZE as u64;
            fb.size = 8 * BLOCK_SIZE as u64;
            for b in 0..8u64 {
                lfs.write_file_blocks(&mut fa, vec![(b, data_block(100 + b as u8))]).await.unwrap();
                lfs.write_file_blocks(&mut fb, vec![(b, data_block(200u8))]).await.unwrap();
            }
            assert!(lfs.stats().segments_written >= 2);
            lfs.free_inode(fb.ino).await.unwrap();
            let freed_before = lfs.free_segments();
            lfs.clean_until(freed_before + 2).await.unwrap();
            assert!(
                lfs.free_segments() > freed_before,
                "cleaning half-dead segments must free space: {} -> {}",
                freed_before,
                lfs.free_segments()
            );
            assert!(lfs.stats().segments_cleaned > 0);
            assert!(lfs.stats().cleaner_moved > 0);
            // File A's data must survive cleaning.
            for b in 0..8u64 {
                let p = lfs.read_file_block(&fa, b).await.unwrap().unwrap();
                assert_eq!(p.bytes().unwrap()[0], 100 + b as u8, "block {b}");
            }
            done2.set(true);
            shutdown_driver.shutdown();
        });
        sim.run_until(SimTime::from_nanos(u64::MAX / 2));
        assert!(done.get(), "test body did not complete");
    }

    /// Shared scenario: format, checkpoint a baseline file, then crash
    /// with un-checkpointed writes in flushed segments. Returns the
    /// inodes of the durable file and the post-checkpoint file.
    async fn crash_scenario(
        h: &cnp_sim::Handle,
        driver: &cnp_disk::DiskDriver,
        params: &LfsParams,
    ) -> (Ino, Ino) {
        let mut lfs = LfsLayout::new(h, driver.clone(), params.clone());
        lfs.format().await.unwrap();
        let mut fa = lfs.alloc_ino(FileKind::Regular, 1).unwrap();
        fa.size = 2 * BLOCK_SIZE as u64;
        lfs.write_file_blocks(&mut fa, vec![(0, data_block(1)), (1, data_block(2))]).await.unwrap();
        lfs.sync().await.unwrap();
        // Post-checkpoint writes: enough to flush several segments,
        // then "crash" (drop the instance without sync/unmount).
        let mut fb = lfs.alloc_ino(FileKind::Regular, 1).unwrap();
        fb.size = 12 * BLOCK_SIZE as u64;
        for b in 0..12u64 {
            lfs.write_file_blocks(&mut fb, vec![(b, data_block(100 + b as u8))]).await.unwrap();
        }
        (fa.ino, fb.ino)
    }

    fn run_crash_test<F, Fut>(seed: u64, f: F)
    where
        F: FnOnce(cnp_sim::Handle, cnp_disk::DiskDriver) -> Fut + 'static,
        Fut: std::future::Future<Output = ()> + 'static,
    {
        let sim = Sim::new(seed);
        let h = sim.handle();
        let driver = sim_disk_driver(&h, "d0", Box::new(Hp97560::new()), Box::new(CLook));
        let shutdown_driver = driver.clone();
        let done = std::rc::Rc::new(std::cell::Cell::new(false));
        let done2 = done.clone();
        let h2 = h.clone();
        h.spawn("test", async move {
            f(h2, driver).await;
            done2.set(true);
            shutdown_driver.shutdown();
        });
        sim.run_until(SimTime::from_nanos(u64::MAX / 2));
        assert!(done.get(), "test body did not complete");
    }

    #[test]
    fn roll_forward_recovers_post_checkpoint_writes() {
        run_crash_test(23, |h, driver| async move {
            let params = LfsParams { seg_blocks: 8, ..LfsParams::default() };
            let (ino_a, ino_b) = crash_scenario(&h, &driver, &params).await;
            let mut rec = LfsLayout::new(&h, driver.clone(), params);
            let stats = rec.recover().await.unwrap();
            assert!(stats.rolled_segments > 0, "young segments must be found");
            assert!(stats.recovered_inodes > 0);
            // The durable file is intact.
            let a = rec.get_inode(ino_a).await.unwrap();
            assert_eq!(rec.read_file_block(&a, 0).await.unwrap().unwrap().bytes().unwrap()[0], 1);
            // The post-checkpoint file rolls forward: every block whose
            // segment was flushed before the crash is back. With 8-block
            // segments (7 payload slots, one taken by the inode block),
            // the first segment flushed holds exactly blocks 0..6; the
            // rest died in the in-memory segment — the loss window.
            let b = rec.get_inode(ino_b).await.expect("rolled-forward inode");
            assert_eq!(b.blocks(), 12, "size travels with the inode");
            for blk in 0..6u64 {
                let p = rec.read_file_block(&b, blk).await.unwrap().expect("mapped block");
                assert_eq!(p.bytes().unwrap()[0], 100 + blk as u8, "block {blk}");
            }
            for blk in 6..12u64 {
                assert!(
                    rec.read_file_block(&b, blk).await.unwrap().is_none(),
                    "block {blk} was never durable and must read as a hole"
                );
            }
        });
    }

    #[test]
    fn recovery_must_not_open_segments_holding_orphan_data() {
        run_crash_test(41, |h, driver| async move {
            let params = LfsParams { seg_blocks: 8, ..LfsParams::default() };
            let mut lfs = LfsLayout::new(&h, driver.clone(), params.clone());
            lfs.format().await.unwrap();
            // The inode (no pointers yet) reaches the checkpoint...
            let mut f = lfs.alloc_ino(FileKind::Regular, 1).unwrap();
            f.size = 20 * BLOCK_SIZE as u64;
            lfs.put_inode(&f).await.unwrap();
            lfs.sync().await.unwrap();
            // ...then ONE multi-segment write: the sealed segments hold
            // only data/indirect entries, the inode append dies in the
            // in-memory segment. Recovery sees pure-orphan segments that
            // charge nothing in the rebuilt usage table.
            let blocks: Vec<(u64, Payload)> = (0..20).map(|b| (b, data_block(b as u8))).collect();
            lfs.write_file_blocks(&mut f, blocks).await.unwrap();
            let ino = f.ino;
            drop(lfs);
            let mut rec = LfsLayout::new(&h, driver.clone(), params);
            let stats = rec.recover().await.unwrap();
            assert!(stats.patched_blocks > 0, "orphan data must be patched in");
            // Every flushed block must survive recovery's own appends:
            // if recovery opened an orphan-data segment as its current
            // segment, these reads would return recovery metadata.
            // (On this disk geometry superseded checkpoint-metadata
            // segments precede the young ones in scan order, so the
            // overwrite needs a nearly-full disk to bite; the
            // protected-segs guard makes it impossible regardless.)
            let got = rec.get_inode(ino).await.unwrap();
            for blk in 0..14u64 {
                let p = rec
                    .read_file_block(&got, blk)
                    .await
                    .unwrap()
                    .unwrap_or_else(|| panic!("block {blk} unmapped"));
                assert_eq!(
                    p.bytes().unwrap()[0],
                    blk as u8,
                    "block {blk} corrupted by recovery appends"
                );
            }
        });
    }

    #[test]
    fn plain_mount_discards_post_checkpoint_state() {
        run_crash_test(29, |h, driver| async move {
            let params = LfsParams { seg_blocks: 8, ..LfsParams::default() };
            let (ino_a, ino_b) = crash_scenario(&h, &driver, &params).await;
            let mut plain = LfsLayout::new(&h, driver.clone(), params);
            plain.mount().await.unwrap();
            assert!(plain.get_inode(ino_a).await.is_ok());
            assert!(
                matches!(plain.get_inode(ino_b).await, Err(LayoutError::BadInode(_))),
                "mount must not see un-checkpointed state"
            );
        });
    }

    #[test]
    fn recover_twice_equals_recover_once() {
        run_crash_test(31, |h, driver| async move {
            let params = LfsParams { seg_blocks: 8, ..LfsParams::default() };
            let (_ino_a, ino_b) = crash_scenario(&h, &driver, &params).await;
            let mut r1 = LfsLayout::new(&h, driver.clone(), params.clone());
            r1.recover().await.unwrap();
            let b1 = r1.get_inode(ino_b).await.expect("first recovery");
            let usage1: Vec<u32> = r1.usage.iter().map(|u| u.live).collect();
            let imap1 = r1.imap.clone();
            drop(r1);
            // A second recovery finds nothing young (the first sealed a
            // checkpoint) and must change nothing.
            let mut r2 = LfsLayout::new(&h, driver.clone(), params);
            let stats = r2.recover().await.unwrap();
            assert_eq!(stats.rolled_segments, 0, "second recovery must be a no-op");
            assert_eq!(stats.patched_blocks, 0);
            let b2 = r2.get_inode(ino_b).await.expect("second recovery");
            assert_eq!(b1, b2);
            assert_eq!(imap1, r2.imap);
            let usage2: Vec<u32> = r2.usage.iter().map(|u| u.live).collect();
            // Live counts may differ only by the relocated checkpoint
            // metadata; total live data must match.
            let total1: u64 = usage1.iter().map(|&v| v as u64).sum();
            let total2: u64 = usage2.iter().map(|&v| v as u64).sum();
            assert_eq!(total1, total2, "recovery must be idempotent on live data");
        });
    }

    #[test]
    fn stale_checkpoint_from_previous_format_is_rejected() {
        run_crash_test(37, |h, driver| async move {
            let params = LfsParams::default();
            // First life: create a file and unmount (high ckpt seq).
            let mut lfs = LfsLayout::new(&h, driver.clone(), params.clone());
            lfs.format().await.unwrap();
            let mut f = lfs.alloc_ino(FileKind::Regular, 1).unwrap();
            f.size = BLOCK_SIZE as u64;
            lfs.write_file_blocks(&mut f, vec![(0, data_block(9))]).await.unwrap();
            let old_ino = f.ino;
            lfs.sync().await.unwrap();
            lfs.sync().await.unwrap();
            lfs.unmount().await.unwrap();
            // Second life: reformat. One checkpoint region still holds
            // the old format's (higher-seq) checkpoint.
            let mut lfs2 = LfsLayout::new(&h, driver.clone(), params.clone());
            lfs2.format().await.unwrap();
            drop(lfs2);
            let mut lfs3 = LfsLayout::new(&h, driver.clone(), params);
            lfs3.mount().await.unwrap();
            assert!(
                matches!(lfs3.get_inode(old_ino).await, Err(LayoutError::BadInode(_))),
                "the previous format's checkpoint must not win the mount"
            );
        });
    }

    #[test]
    fn truncate_frees_tail_blocks() {
        run_lfs(|_h, mut lfs| async move {
            lfs.format().await.unwrap();
            let mut f = lfs.alloc_ino(FileKind::Regular, 1).unwrap();
            f.size = 16 * BLOCK_SIZE as u64;
            lfs.write_file_blocks(&mut f, (0..16).map(|b| (b, data_block(9))).collect())
                .await
                .unwrap();
            lfs.truncate(&mut f, 2).await.unwrap();
            assert_eq!(f.size, 2 * BLOCK_SIZE as u64);
            assert!(lfs.read_file_block(&f, 0).await.unwrap().is_some());
            assert!(lfs.read_file_block(&f, 2).await.unwrap().is_none());
            assert!(lfs.read_file_block(&f, 13).await.unwrap().is_none());
            assert!(!f.indirect.is_some(), "indirect dropped when unused");
        });
    }

    #[test]
    fn simulated_payloads_flow_through() {
        run_lfs(|_h, mut lfs| async move {
            lfs.format().await.unwrap();
            let mut f = lfs.alloc_ino(FileKind::Regular, 1).unwrap();
            f.size = 2 * BLOCK_SIZE as u64;
            // Off-line mode: user data has no bytes.
            lfs.write_file_blocks(
                &mut f,
                vec![(0, Payload::Simulated(BLOCK_SIZE)), (1, Payload::Simulated(BLOCK_SIZE))],
            )
            .await
            .unwrap();
            let p = lfs.read_file_block(&f, 0).await.unwrap().unwrap();
            assert_eq!(p.len(), BLOCK_SIZE);
            // Metadata still works: inode survives a sync.
            lfs.sync().await.unwrap();
            let got = lfs.get_inode(f.ino).await.unwrap();
            assert_eq!(got.size, f.size);
        });
    }
}
