//! LFS on-disk structures: superblock, checkpoint regions, segment
//! summaries, the inode map (IFILE) and the segment usage table.

use crate::error::{LResult, LayoutError};
use crate::types::codec::{get_u32, get_u64, put_u32, put_u64};
use crate::types::{BlockAddr, BLOCK_SIZE};

/// Magic number identifying an LFS superblock.
pub const SB_MAGIC: u32 = 0x1f5_5b10;
/// Magic number of a checkpoint block.
pub const CKPT_MAGIC: u32 = 0x1f5_c927;
/// Magic number of a segment summary block.
pub const SUM_MAGIC: u32 = 0x1f5_5a33;

/// Fixed location of the superblock.
pub const SB_ADDR: BlockAddr = BlockAddr(0);
/// Fixed locations of the two alternating checkpoint regions.
pub const CKPT_ADDRS: [BlockAddr; 2] = [BlockAddr(1), BlockAddr(2)];
/// First segment starts here.
pub const DATA_START: u64 = 3;

/// The LFS superblock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperBlock {
    /// Blocks per segment (including the summary block).
    pub seg_blocks: u32,
    /// Number of segments.
    pub nsegs: u32,
    /// Format generation: stamps every summary and checkpoint so stale
    /// structures from a previous `format` can never be trusted.
    pub gen: u64,
}

impl SuperBlock {
    /// Serializes to one block.
    pub fn to_block(&self) -> Vec<u8> {
        let mut b = vec![0u8; BLOCK_SIZE as usize];
        put_u32(&mut b, 0, SB_MAGIC);
        put_u32(&mut b, 4, self.seg_blocks);
        put_u32(&mut b, 8, self.nsegs);
        put_u32(&mut b, 12, BLOCK_SIZE);
        put_u64(&mut b, 16, self.gen);
        b
    }

    /// Parses from a block.
    pub fn from_block(b: &[u8]) -> LResult<SuperBlock> {
        if b.len() < 24 || get_u32(b, 0) != SB_MAGIC {
            return Err(LayoutError::NotFormatted);
        }
        if get_u32(b, 12) != BLOCK_SIZE {
            return Err(LayoutError::Corrupt("block size mismatch".into()));
        }
        Ok(SuperBlock { seg_blocks: get_u32(b, 4), nsegs: get_u32(b, 8), gen: get_u64(b, 16) })
    }
}

/// What a segment payload block holds (summary entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SumEntry {
    /// Unused slot (partial segment).
    Free,
    /// File data block.
    Data {
        /// Owning inode.
        ino: u64,
        /// File block index.
        fblk: u64,
    },
    /// Single indirect pointer block of `ino`.
    Indirect {
        /// Owning inode.
        ino: u64,
    },
    /// A block packing up to 16 inodes.
    InodeBlock,
    /// Inode-map (IFILE) block written at a checkpoint.
    Imap,
    /// Segment-usage-table block written at a checkpoint.
    Usage,
}

impl SumEntry {
    fn encode(&self, buf: &mut [u8]) {
        match self {
            SumEntry::Free => buf[0] = 0,
            SumEntry::Data { ino, fblk } => {
                buf[0] = 1;
                put_u64(buf, 1, *ino);
                put_u64(buf, 9, *fblk);
            }
            SumEntry::Indirect { ino } => {
                buf[0] = 2;
                put_u64(buf, 1, *ino);
            }
            SumEntry::InodeBlock => buf[0] = 3,
            SumEntry::Imap => buf[0] = 4,
            SumEntry::Usage => buf[0] = 5,
        }
    }

    fn decode(buf: &[u8]) -> LResult<SumEntry> {
        Ok(match buf[0] {
            0 => SumEntry::Free,
            1 => SumEntry::Data { ino: get_u64(buf, 1), fblk: get_u64(buf, 9) },
            2 => SumEntry::Indirect { ino: get_u64(buf, 1) },
            3 => SumEntry::InodeBlock,
            4 => SumEntry::Imap,
            5 => SumEntry::Usage,
            t => return Err(LayoutError::Corrupt(format!("bad summary tag {t}"))),
        })
    }
}

/// Bytes per encoded summary entry.
const SUM_ENTRY_SIZE: usize = 17;

/// Fixed summary header: magic, count, gen, epoch, seq.
const SUM_HEADER: usize = 32;

/// Payload entries one summary block can describe.
pub const SUM_MAX_ENTRIES: usize = (BLOCK_SIZE as usize - SUM_HEADER - 8) / SUM_ENTRY_SIZE;

/// A decoded segment summary: identity header plus per-slot entries.
///
/// `gen` ties the summary to one `format`; `epoch` to one mount/recover
/// generation; `seq` orders segment flushes within an epoch. Together
/// they let crash recovery find exactly the segments written after the
/// last checkpoint (roll-forward) and never replay stale ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegSummary {
    /// Format generation (must match the superblock).
    pub gen: u64,
    /// Mount epoch the segment was written in.
    pub epoch: u64,
    /// Monotone segment-flush sequence number within the epoch's log.
    pub seq: u64,
    /// What each payload slot holds.
    pub entries: Vec<SumEntry>,
}

/// Serializes a segment summary to one checksummed block.
pub fn summary_to_block(summary: &SegSummary) -> Vec<u8> {
    debug_assert!(summary.entries.len() <= SUM_MAX_ENTRIES);
    let mut b = vec![0u8; BLOCK_SIZE as usize];
    put_u32(&mut b, 0, SUM_MAGIC);
    put_u32(&mut b, 4, summary.entries.len() as u32);
    put_u64(&mut b, 8, summary.gen);
    put_u64(&mut b, 16, summary.epoch);
    put_u64(&mut b, 24, summary.seq);
    for (i, e) in summary.entries.iter().enumerate() {
        let off = SUM_HEADER + i * SUM_ENTRY_SIZE;
        e.encode(&mut b[off..off + SUM_ENTRY_SIZE]);
    }
    let sum = checksum(&b[..BLOCK_SIZE as usize - 8]);
    put_u64(&mut b, BLOCK_SIZE as usize - 8, sum);
    b
}

/// Parses and validates a segment summary block.
///
/// The trailing checksum rejects torn summary writes, so a summary that
/// parses implies the whole block (and, because payload runs are written
/// before their summary, the segment contents) hit the media intact.
pub fn summary_from_block(b: &[u8]) -> LResult<SegSummary> {
    if b.len() < BLOCK_SIZE as usize || get_u32(b, 0) != SUM_MAGIC {
        return Err(LayoutError::Corrupt("bad summary magic".into()));
    }
    if checksum(&b[..BLOCK_SIZE as usize - 8]) != get_u64(b, BLOCK_SIZE as usize - 8) {
        return Err(LayoutError::Corrupt("summary checksum mismatch".into()));
    }
    let n = get_u32(b, 4) as usize;
    if n > SUM_MAX_ENTRIES {
        return Err(LayoutError::Corrupt("summary overflow".into()));
    }
    let entries = (0..n)
        .map(|i| SumEntry::decode(&b[SUM_HEADER + i * SUM_ENTRY_SIZE..]))
        .collect::<LResult<Vec<_>>>()?;
    Ok(SegSummary { gen: get_u64(b, 8), epoch: get_u64(b, 16), seq: get_u64(b, 24), entries })
}

/// Per-segment usage record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegUsage {
    /// Live bytes in the segment.
    pub live: u32,
    /// Last modification (ns of simulation time) for cost-benefit aging.
    pub mtime: u64,
}

/// Entries per usage-table block.
pub const USAGE_PER_BLOCK: usize = (BLOCK_SIZE as usize - 8) / 12;

/// Serializes the usage table into blocks.
pub fn usage_to_blocks(usage: &[SegUsage]) -> Vec<Vec<u8>> {
    usage
        .chunks(USAGE_PER_BLOCK)
        .map(|chunk| {
            let mut b = vec![0u8; BLOCK_SIZE as usize];
            put_u32(&mut b, 0, chunk.len() as u32);
            for (i, u) in chunk.iter().enumerate() {
                let off = 8 + i * 12;
                put_u32(&mut b, off, u.live);
                put_u64(&mut b, off + 4, u.mtime);
            }
            b
        })
        .collect()
}

/// Parses usage blocks back into a table.
pub fn usage_from_blocks(blocks: &[Vec<u8>]) -> Vec<SegUsage> {
    let mut out = Vec::new();
    for b in blocks {
        let n = get_u32(b, 0) as usize;
        for i in 0..n {
            let off = 8 + i * 12;
            out.push(SegUsage { live: get_u32(b, off), mtime: get_u64(b, off + 4) });
        }
    }
    out
}

/// Inode-map entries per IFILE block.
pub const IMAP_PER_BLOCK: usize = (BLOCK_SIZE as usize - 8) / 8;

/// Sentinel for a free inode-map slot.
pub const IMAP_NONE: u64 = u64::MAX;

/// Packs an inode location (block address + slot within block).
pub fn imap_pack(addr: BlockAddr, slot: usize) -> u64 {
    addr.0 * 16 + slot as u64
}

/// Unpacks an inode location.
pub fn imap_unpack(v: u64) -> (BlockAddr, usize) {
    (BlockAddr(v / 16), (v % 16) as usize)
}

/// Serializes the inode map into blocks.
pub fn imap_to_blocks(imap: &[u64]) -> Vec<Vec<u8>> {
    if imap.is_empty() {
        return Vec::new();
    }
    imap.chunks(IMAP_PER_BLOCK)
        .map(|chunk| {
            let mut b = vec![0u8; BLOCK_SIZE as usize];
            put_u32(&mut b, 0, chunk.len() as u32);
            for (i, v) in chunk.iter().enumerate() {
                put_u64(&mut b, 8 + i * 8, *v);
            }
            b
        })
        .collect()
}

/// Parses inode-map blocks.
pub fn imap_from_blocks(blocks: &[Vec<u8>]) -> Vec<u64> {
    let mut out = Vec::new();
    for b in blocks {
        let n = get_u32(b, 0) as usize;
        for i in 0..n {
            out.push(get_u64(b, 8 + i * 8));
        }
    }
    out
}

/// A checkpoint: the durable root of the file system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Monotone sequence number (newer wins at mount).
    pub seq: u64,
    /// Next inode number to allocate.
    pub next_ino: u64,
    /// Format generation (must match the superblock at mount).
    pub gen: u64,
    /// Mount epoch the checkpoint was written in.
    pub epoch: u64,
    /// Log sequence number of the last segment sealed before this
    /// checkpoint; segments with a larger in-epoch seq are roll-forward
    /// candidates after a crash.
    pub log_seq: u64,
    /// Addresses of the inode-map blocks, in order.
    pub imap_addrs: Vec<u64>,
    /// Addresses of the usage-table blocks, in order.
    pub usage_addrs: Vec<u64>,
}

impl Checkpoint {
    /// Serializes to one block with a trailing checksum.
    ///
    /// # Panics
    ///
    /// Panics if the address lists do not fit one block (≈ 500 entries;
    /// enough for > 250 k inodes).
    pub fn to_block(&self) -> Vec<u8> {
        let mut b = vec![0u8; BLOCK_SIZE as usize];
        put_u32(&mut b, 0, CKPT_MAGIC);
        put_u64(&mut b, 8, self.seq);
        put_u64(&mut b, 16, self.next_ino);
        put_u32(&mut b, 24, self.imap_addrs.len() as u32);
        put_u32(&mut b, 28, self.usage_addrs.len() as u32);
        put_u64(&mut b, 32, self.gen);
        put_u64(&mut b, 40, self.epoch);
        put_u64(&mut b, 48, self.log_seq);
        let mut off = 56;
        for &a in self.imap_addrs.iter().chain(self.usage_addrs.iter()) {
            assert!(off + 8 <= BLOCK_SIZE as usize - 8, "checkpoint overflow");
            put_u64(&mut b, off, a);
            off += 8;
        }
        let sum = checksum(&b[..BLOCK_SIZE as usize - 8]);
        put_u64(&mut b, BLOCK_SIZE as usize - 8, sum);
        b
    }

    /// Parses and validates a checkpoint block; `None` if invalid.
    pub fn from_block(b: &[u8]) -> Option<Checkpoint> {
        if b.len() < BLOCK_SIZE as usize || get_u32(b, 0) != CKPT_MAGIC {
            return None;
        }
        let sum = get_u64(b, BLOCK_SIZE as usize - 8);
        if checksum(&b[..BLOCK_SIZE as usize - 8]) != sum {
            return None;
        }
        let ni = get_u32(b, 24) as usize;
        let nu = get_u32(b, 28) as usize;
        let mut off = 56;
        let mut imap_addrs = Vec::with_capacity(ni);
        for _ in 0..ni {
            imap_addrs.push(get_u64(b, off));
            off += 8;
        }
        let mut usage_addrs = Vec::with_capacity(nu);
        for _ in 0..nu {
            usage_addrs.push(get_u64(b, off));
            off += 8;
        }
        Some(Checkpoint {
            seq: get_u64(b, 8),
            next_ino: get_u64(b, 16),
            gen: get_u64(b, 32),
            epoch: get_u64(b, 40),
            log_seq: get_u64(b, 48),
            imap_addrs,
            usage_addrs,
        })
    }
}

/// FNV-1a style checksum over checkpoint contents.
fn checksum(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in data {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superblock_round_trip() {
        let sb = SuperBlock { seg_blocks: 128, nsegs: 2621, gen: 0xfeed_beef };
        let b = sb.to_block();
        assert_eq!(SuperBlock::from_block(&b).unwrap(), sb);
        assert!(matches!(SuperBlock::from_block(&vec![0u8; 4096]), Err(LayoutError::NotFormatted)));
    }

    #[test]
    fn summary_round_trip() {
        let entries = vec![
            SumEntry::Data { ino: 7, fblk: 3 },
            SumEntry::Indirect { ino: 7 },
            SumEntry::InodeBlock,
            SumEntry::Imap,
            SumEntry::Usage,
            SumEntry::Free,
        ];
        let s = SegSummary { gen: 99, epoch: 3, seq: 41, entries };
        let b = summary_to_block(&s);
        assert_eq!(summary_from_block(&b).unwrap(), s);
    }

    #[test]
    fn summary_checksum_rejects_torn_block() {
        let s = SegSummary {
            gen: 1,
            epoch: 1,
            seq: 1,
            entries: vec![SumEntry::Data { ino: 1, fblk: 0 }],
        };
        let mut b = summary_to_block(&s);
        b[100] ^= 0xff;
        assert!(summary_from_block(&b).is_err());
    }

    #[test]
    fn summary_capacity_fits_big_segments() {
        // SUM_MAX_ENTRIES payload blocks (≈ 1 MB segments) is the limit.
        let entries = vec![SumEntry::Data { ino: 1, fblk: 2 }; SUM_MAX_ENTRIES];
        let s = SegSummary { gen: 0, epoch: 0, seq: 0, entries };
        let b = summary_to_block(&s);
        assert_eq!(summary_from_block(&b).unwrap().entries.len(), SUM_MAX_ENTRIES);
    }

    #[test]
    fn usage_round_trip() {
        let usage: Vec<SegUsage> =
            (0..700).map(|i| SegUsage { live: i * 13, mtime: i as u64 * 7 }).collect();
        let blocks = usage_to_blocks(&usage);
        assert!(blocks.len() >= 2, "700 entries need multiple blocks");
        assert_eq!(usage_from_blocks(&blocks), usage);
    }

    #[test]
    fn imap_round_trip() {
        let imap: Vec<u64> =
            (0..1200).map(|i| if i % 3 == 0 { IMAP_NONE } else { i * 11 }).collect();
        let blocks = imap_to_blocks(&imap);
        assert_eq!(imap_from_blocks(&blocks), imap);
        assert!(imap_to_blocks(&[]).is_empty());
    }

    #[test]
    fn imap_packing() {
        let (a, s) = imap_unpack(imap_pack(BlockAddr(1234), 7));
        assert_eq!(a, BlockAddr(1234));
        assert_eq!(s, 7);
    }

    #[test]
    fn checkpoint_round_trip_and_checksum() {
        let c = Checkpoint {
            seq: 42,
            next_ino: 100,
            gen: 7,
            epoch: 3,
            log_seq: 55,
            imap_addrs: vec![10, 11, 12],
            usage_addrs: vec![20, 21],
        };
        let mut b = c.to_block();
        assert_eq!(Checkpoint::from_block(&b), Some(c));
        // Corrupt one byte: checksum must reject.
        b[40] ^= 0xff;
        assert_eq!(Checkpoint::from_block(&b), None);
    }
}
