//! Layout error type.

use cnp_disk::IoError;

use crate::types::Ino;

/// Errors produced by storage layouts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// Underlying device failure.
    Io(IoError),
    /// No free segments/blocks remain.
    NoSpace,
    /// Unknown or freed inode.
    BadInode(Ino),
    /// File block index beyond the representable maximum.
    FileTooBig(u64),
    /// On-disk structure failed validation.
    Corrupt(String),
    /// Mount attempted on an unformatted or foreign disk.
    NotFormatted,
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutError::Io(e) => write!(f, "i/o error: {e}"),
            LayoutError::NoSpace => write!(f, "no space left on device"),
            LayoutError::BadInode(ino) => write!(f, "bad inode {ino}"),
            LayoutError::FileTooBig(blk) => write!(f, "file block {blk} beyond maximum"),
            LayoutError::Corrupt(m) => write!(f, "corrupt file system: {m}"),
            LayoutError::NotFormatted => write!(f, "device not formatted"),
        }
    }
}

impl std::error::Error for LayoutError {}

impl From<IoError> for LayoutError {
    fn from(e: IoError) -> Self {
        LayoutError::Io(e)
    }
}

/// Result alias for layout operations.
pub type LResult<T> = Result<T, LayoutError>;
