//! The storage-layout abstraction and its enum-dispatched instantiation.
//!
//! "The storage-layout component is responsible for defining a
//! file-system layout on a raw disk. … The base storage-layout class is
//! only an interface: it does not implement an algorithm. Specific
//! layouts are implemented through derived classes." (§2)

use cnp_disk::{DiskDriver, Payload};

use crate::error::LResult;
use crate::ffs::FfsLayout;
use crate::inode::Inode;
use crate::lfs::LfsLayout;
use crate::simguess::SimGuessLayout;
use crate::types::{BlockAddr, FileKind, Ino};

/// Counters exported by a layout.
#[derive(Debug, Clone, Copy, Default)]
pub struct LayoutStats {
    /// Metadata blocks read (inodes, indirect, summaries, maps).
    pub meta_reads: u64,
    /// Metadata blocks written.
    pub meta_writes: u64,
    /// Data blocks written.
    pub data_writes: u64,
    /// Data blocks read.
    pub data_reads: u64,
    /// Whole segments written (LFS).
    pub segments_written: u64,
    /// Segments cleaned (LFS).
    pub segments_cleaned: u64,
    /// Live blocks moved by the cleaner (LFS).
    pub cleaner_moved: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
}

/// What a crash-recovery pass did (see [`StorageLayout::recover`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Post-checkpoint segments rolled forward (LFS).
    pub rolled_segments: u64,
    /// Inodes recovered from the log / rebuilt tables.
    pub recovered_inodes: u64,
    /// File-block pointers patched to their rolled-forward locations.
    pub patched_blocks: u64,
}

/// One physical run of a file's logical block range: `len` consecutive
/// logical blocks starting at `start_blk` that map to `len` consecutive
/// device blocks starting at `addr` (or to a hole when `addr` is
/// `None`).
///
/// Extents are what turn per-block callouts into scatter-gather: one
/// [`StorageLayout::map_extents`] call under the layout lock yields the
/// physical runs, and the I/O for every run can then be issued
/// concurrently outside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// First logical (file) block of the run.
    pub start_blk: u64,
    /// Number of consecutive blocks in the run.
    pub len: u32,
    /// Device address of the first block, or `None` for a hole.
    pub addr: Option<BlockAddr>,
}

/// The storage-layout interface every layout implements.
///
/// Rust rendition of the paper's abstract storage-layout base class:
/// "for all layout and policy decisions, there exists a virtual method
/// in the base-class".
///
/// The async methods are used generically (enum dispatch via
/// [`Layout`]), never as `dyn` objects, so auto-trait bounds on the
/// returned futures are not needed.
#[allow(async_fn_in_trait)]
pub trait StorageLayout {
    /// Layout name for configuration and reports.
    fn name(&self) -> &'static str;

    /// Creates an empty file system (with a root directory inode).
    async fn format(&mut self) -> LResult<()>;

    /// Loads on-disk state (checkpoint/superblock).
    async fn mount(&mut self) -> LResult<()>;

    /// Mounts after a crash, repairing and rolling state forward where
    /// the layout can (LFS: checkpoint + segment roll-forward; FFS:
    /// allocation-bitmap rebuild). The default is a plain mount.
    async fn recover(&mut self) -> LResult<RecoveryStats> {
        self.mount().await?;
        Ok(RecoveryStats::default())
    }

    /// Flushes all state and writes a final checkpoint.
    async fn unmount(&mut self) -> LResult<()>;

    /// Durability point: push buffered layout state to disk.
    async fn sync(&mut self) -> LResult<()>;

    /// Cheap media-durability point for freshly written blocks: seal any
    /// volatile staging buffer (the LFS in-memory segment) *without* a
    /// full checkpoint. NVRAM configurations call this after cache
    /// drains so "clean in cache" implies "on the platter" — otherwise a
    /// crash could lose acknowledged writes that NVRAM already released.
    /// Write-through layouts need nothing.
    async fn flush_staged(&mut self) -> LResult<()> {
        Ok(())
    }

    /// Allocates a fresh inode.
    fn alloc_ino(&mut self, kind: FileKind, now_ns: u64) -> LResult<Inode>;

    /// Reads an inode.
    async fn get_inode(&mut self, ino: Ino) -> LResult<Inode>;

    /// Persists an inode (metadata-only change).
    async fn put_inode(&mut self, inode: &Inode) -> LResult<()>;

    /// Frees an inode and every block it references.
    async fn free_inode(&mut self, ino: Ino) -> LResult<()>;

    /// Disk address of file block `blk`, or `None` for a hole.
    async fn map_block(&mut self, inode: &Inode, blk: u64) -> LResult<Option<BlockAddr>>;

    /// Maps the logical range `[start_blk, start_blk + nblocks)` to its
    /// physical runs, coalescing physically-consecutive blocks (and
    /// holes) into single [`Extent`]s.
    ///
    /// The default derives the runs from [`StorageLayout::map_block`];
    /// layouts with cheaper bulk mapping may override it. An empty range
    /// returns no extents.
    async fn map_extents(
        &mut self,
        inode: &Inode,
        start_blk: u64,
        nblocks: u64,
    ) -> LResult<Vec<Extent>> {
        let mut out: Vec<Extent> = Vec::new();
        for blk in start_blk..start_blk + nblocks {
            let addr = self.map_block(inode, blk).await?;
            let extend = match (out.last(), addr) {
                (Some(last), Some(a)) => {
                    last.addr.map(|la| la.0 + last.len as u64 == a.0).unwrap_or(false)
                }
                (Some(last), None) => last.addr.is_none(),
                (None, _) => false,
            };
            if extend {
                out.last_mut().expect("checked").len += 1;
            } else {
                out.push(Extent { start_blk: blk, len: 1, addr });
            }
        }
        Ok(out)
    }

    /// Returns the payload of a block still buffered in the layout (not
    /// yet on disk), e.g. the LFS's unflushed segment. `None` means the
    /// device copy is authoritative.
    fn staged_block(&self, _addr: BlockAddr) -> Option<Payload> {
        None
    }

    /// Exports the whole staging buffer as the device writes that would
    /// seal it, without touching the device — the dead-disk half of
    /// crash capture ([`StorageLayout::flush_staged`] needs a live
    /// disk; a battery-backed staging buffer survives a cut that killed
    /// the disk first, so capture applies these to the image directly).
    /// Write-through layouts stage nothing.
    fn staged_image(&self) -> Vec<(BlockAddr, Payload)> {
        Vec::new()
    }

    /// Reads one file block (`None` for a hole).
    async fn read_file_block(&mut self, inode: &Inode, blk: u64) -> LResult<Option<Payload>>;

    /// Writes file blocks, allocating/relocating as the layout dictates,
    /// updating `inode`'s pointers, and persisting the inode.
    async fn write_file_blocks(
        &mut self,
        inode: &mut Inode,
        blocks: Vec<(u64, Payload)>,
    ) -> LResult<()>;

    /// Frees file blocks at indices `>= new_blocks` (truncate).
    async fn truncate(&mut self, inode: &mut Inode, new_blocks: u64) -> LResult<()>;

    /// Every inode number currently allocated, in ascending order.
    ///
    /// This is the fsck walker's ground truth for orphan detection: an
    /// allocated inode unreachable from the root is a space leak that
    /// `repair` attaches to `lost+found`. Layouts keep this metadata in
    /// memory once mounted (LFS inode map, FFS inode bitmap), so the
    /// scan is synchronous.
    fn allocated_inos(&self) -> Vec<Ino>;

    /// Counter snapshot.
    fn stats(&self) -> LayoutStats;

    /// Drains the set of inodes whose blocks the layout relocated on
    /// its own initiative (the LFS cleaner) since the last drain.
    /// Engines caching inodes in memory must refresh these pointers or
    /// they will read/supersede through freed segments. Layouts that
    /// never move blocks behind the caller return nothing.
    fn take_relocated(&mut self) -> Vec<Ino> {
        Vec::new()
    }

    /// The disk driver underneath (for plug-in statistics).
    fn driver(&self) -> &DiskDriver;
}

/// Runtime-selected layout (the cut-and-paste configuration point).
///
/// One `Layout` exists per mounted file system, so the size spread
/// between variants (LFS carries its maps and segment builder inline)
/// costs nothing that matters; boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
pub enum Layout {
    /// Segmented log-structured layout (the paper's production choice).
    Lfs(LfsLayout),
    /// FFS-like update-in-place layout.
    Ffs(FfsLayout),
    /// The paper's off-line "educated guess" layout.
    SimGuess(SimGuessLayout),
}

macro_rules! dispatch {
    ($self:ident, $m:ident $(, $arg:expr)*) => {
        match $self {
            Layout::Lfs(l) => l.$m($($arg),*),
            Layout::Ffs(l) => l.$m($($arg),*),
            Layout::SimGuess(l) => l.$m($($arg),*),
        }
    };
}

macro_rules! dispatch_async {
    ($self:ident, $m:ident $(, $arg:expr)*) => {
        match $self {
            Layout::Lfs(l) => l.$m($($arg),*).await,
            Layout::Ffs(l) => l.$m($($arg),*).await,
            Layout::SimGuess(l) => l.$m($($arg),*).await,
        }
    };
}

impl StorageLayout for Layout {
    fn name(&self) -> &'static str {
        dispatch!(self, name)
    }

    async fn format(&mut self) -> LResult<()> {
        dispatch_async!(self, format)
    }

    async fn mount(&mut self) -> LResult<()> {
        dispatch_async!(self, mount)
    }

    async fn recover(&mut self) -> LResult<RecoveryStats> {
        dispatch_async!(self, recover)
    }

    async fn unmount(&mut self) -> LResult<()> {
        dispatch_async!(self, unmount)
    }

    async fn sync(&mut self) -> LResult<()> {
        dispatch_async!(self, sync)
    }

    async fn flush_staged(&mut self) -> LResult<()> {
        dispatch_async!(self, flush_staged)
    }

    fn alloc_ino(&mut self, kind: FileKind, now_ns: u64) -> LResult<Inode> {
        dispatch!(self, alloc_ino, kind, now_ns)
    }

    async fn get_inode(&mut self, ino: Ino) -> LResult<Inode> {
        dispatch_async!(self, get_inode, ino)
    }

    async fn put_inode(&mut self, inode: &Inode) -> LResult<()> {
        dispatch_async!(self, put_inode, inode)
    }

    async fn free_inode(&mut self, ino: Ino) -> LResult<()> {
        dispatch_async!(self, free_inode, ino)
    }

    async fn map_block(&mut self, inode: &Inode, blk: u64) -> LResult<Option<BlockAddr>> {
        dispatch_async!(self, map_block, inode, blk)
    }

    async fn map_extents(
        &mut self,
        inode: &Inode,
        start_blk: u64,
        nblocks: u64,
    ) -> LResult<Vec<Extent>> {
        dispatch_async!(self, map_extents, inode, start_blk, nblocks)
    }

    fn staged_block(&self, addr: BlockAddr) -> Option<Payload> {
        dispatch!(self, staged_block, addr)
    }

    fn staged_image(&self) -> Vec<(BlockAddr, Payload)> {
        dispatch!(self, staged_image)
    }

    async fn read_file_block(&mut self, inode: &Inode, blk: u64) -> LResult<Option<Payload>> {
        dispatch_async!(self, read_file_block, inode, blk)
    }

    async fn write_file_blocks(
        &mut self,
        inode: &mut Inode,
        blocks: Vec<(u64, Payload)>,
    ) -> LResult<()> {
        dispatch_async!(self, write_file_blocks, inode, blocks)
    }

    async fn truncate(&mut self, inode: &mut Inode, new_blocks: u64) -> LResult<()> {
        dispatch_async!(self, truncate, inode, new_blocks)
    }

    fn allocated_inos(&self) -> Vec<Ino> {
        dispatch!(self, allocated_inos)
    }

    fn stats(&self) -> LayoutStats {
        dispatch!(self, stats)
    }

    fn take_relocated(&mut self) -> Vec<Ino> {
        dispatch!(self, take_relocated)
    }

    fn driver(&self) -> &DiskDriver {
        dispatch!(self, driver)
    }
}
