//! Block-granular I/O over a sector-granular disk driver.

use cnp_disk::{DiskDriver, IoOp, Payload};

use crate::error::{LResult, LayoutError};
use crate::types::{BlockAddr, BLOCK_SIZE};

/// Block-addressed view of a [`DiskDriver`].
#[derive(Clone)]
pub struct BlockIo {
    driver: DiskDriver,
    sectors_per_block: u32,
}

impl BlockIo {
    /// Wraps a driver; the driver's sector size must divide [`BLOCK_SIZE`].
    pub fn new(driver: DiskDriver) -> Self {
        let ssz = driver.sector_size();
        assert!(BLOCK_SIZE.is_multiple_of(ssz), "sector size {ssz} must divide block size");
        BlockIo { driver: driver.clone(), sectors_per_block: BLOCK_SIZE / ssz }
    }

    /// The wrapped driver.
    pub fn driver(&self) -> &DiskDriver {
        &self.driver
    }

    /// Device capacity in file-system blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.driver.capacity_sectors() / self.sectors_per_block as u64
    }

    /// Reads one block.
    pub async fn read_block(&self, addr: BlockAddr) -> LResult<Payload> {
        debug_assert!(addr.is_some());
        let lba = addr.0 * self.sectors_per_block as u64;
        let (payload, _t) = self
            .driver
            .submit(IoOp::Read, lba, self.sectors_per_block, Payload::Simulated(0))
            .await?;
        Ok(payload)
    }

    /// Reads `n` consecutive blocks as one request.
    pub async fn read_run(&self, addr: BlockAddr, n: u32) -> LResult<Payload> {
        let lba = addr.0 * self.sectors_per_block as u64;
        let (payload, _t) = self
            .driver
            .submit(IoOp::Read, lba, self.sectors_per_block * n, Payload::Simulated(0))
            .await?;
        Ok(payload)
    }

    /// Writes one block.
    pub async fn write_block(&self, addr: BlockAddr, payload: Payload) -> LResult<()> {
        debug_assert!(addr.is_some());
        let lba = addr.0 * self.sectors_per_block as u64;
        self.driver.submit(IoOp::Write, lba, self.sectors_per_block, payload).await?;
        Ok(())
    }

    /// Writes a run of consecutive blocks, coalescing same-kind payloads
    /// into single requests (real-byte runs stay real; simulated runs
    /// stay length-only), so big sequential writes cost one controller
    /// overhead instead of one per block.
    pub async fn write_run(&self, start: BlockAddr, blocks: Vec<Payload>) -> LResult<()> {
        let mut i = 0usize;
        while i < blocks.len() {
            let real = blocks[i].bytes().is_some();
            let mut j = i + 1;
            while j < blocks.len() && (blocks[j].bytes().is_some() == real) {
                j += 1;
            }
            let n = (j - i) as u32;
            let lba = (start.0 + i as u64) * self.sectors_per_block as u64;
            let payload = if real {
                let mut buf = Vec::with_capacity((n as usize) * BLOCK_SIZE as usize);
                for b in &blocks[i..j] {
                    let bytes = b.bytes().expect("run is real");
                    buf.extend_from_slice(bytes);
                    buf.resize(buf.len().next_multiple_of(BLOCK_SIZE as usize), 0);
                }
                Payload::Data(buf)
            } else {
                Payload::Simulated(n * BLOCK_SIZE)
            };
            self.driver.submit(IoOp::Write, lba, self.sectors_per_block * n, payload).await?;
            i = j;
        }
        Ok(())
    }

    /// Extracts block `idx` of a multi-block payload as owned bytes.
    pub fn block_bytes(payload: &Payload, idx: usize) -> LResult<Vec<u8>> {
        match payload.bytes() {
            Some(b) => {
                let lo = idx * BLOCK_SIZE as usize;
                let hi = lo + BLOCK_SIZE as usize;
                if b.len() < hi {
                    return Err(LayoutError::Corrupt(format!(
                        "payload too short: {} < {hi}",
                        b.len()
                    )));
                }
                Ok(b[lo..hi].to_vec())
            }
            None => Err(LayoutError::Corrupt("expected real bytes, got simulated".into())),
        }
    }
}
