//! Block-granular I/O over a sector-granular disk driver.
//!
//! Besides the single-block helpers, this is the scatter-gather layer of
//! the pipelined I/O path: multi-run reads and writes are issued as one
//! tagged batch to the driver ([`cnp_disk::DiskDriver::submit_batch`])
//! whenever the driver's queue depth allows more than one outstanding
//! command, and fall back to the exact legacy serial sequence at depth 1
//! so lock-step runs replay bit-identically.

use cnp_disk::{DiskDriver, IoOp, Payload};

use crate::error::{LResult, LayoutError};
use crate::layout::Extent;
use crate::types::{BlockAddr, BLOCK_SIZE};

/// Block-addressed view of a [`DiskDriver`].
#[derive(Clone)]
pub struct BlockIo {
    driver: DiskDriver,
    sectors_per_block: u32,
}

impl BlockIo {
    /// Wraps a driver; the driver's sector size must divide [`BLOCK_SIZE`].
    pub fn new(driver: DiskDriver) -> Self {
        let ssz = driver.sector_size();
        assert!(BLOCK_SIZE.is_multiple_of(ssz), "sector size {ssz} must divide block size");
        BlockIo { driver: driver.clone(), sectors_per_block: BLOCK_SIZE / ssz }
    }

    /// The wrapped driver.
    pub fn driver(&self) -> &DiskDriver {
        &self.driver
    }

    /// Device capacity in file-system blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.driver.capacity_sectors() / self.sectors_per_block as u64
    }

    /// True when the driver may keep several commands outstanding, i.e.
    /// batching requests buys real concurrency. Layouts consult this to
    /// keep their depth-1 request sequences identical to the
    /// pre-pipelining code.
    pub(crate) fn pipelined(&self) -> bool {
        self.driver.max_inflight() > 1
    }

    /// Reads one block.
    pub async fn read_block(&self, addr: BlockAddr) -> LResult<Payload> {
        debug_assert!(addr.is_some());
        let lba = addr.0 * self.sectors_per_block as u64;
        let (payload, _t) = self
            .driver
            .submit(IoOp::Read, lba, self.sectors_per_block, Payload::Simulated(0))
            .await?;
        Ok(payload)
    }

    /// Reads `n` consecutive blocks as one request.
    pub async fn read_run(&self, addr: BlockAddr, n: u32) -> LResult<Payload> {
        let lba = addr.0 * self.sectors_per_block as u64;
        let (payload, _t) = self
            .driver
            .submit(IoOp::Read, lba, self.sectors_per_block * n, Payload::Simulated(0))
            .await?;
        Ok(payload)
    }

    /// Reads several block runs, one payload per run, in input order.
    ///
    /// With a deep driver queue the runs go out as one batch and proceed
    /// concurrently; at queue depth 1 they are issued serially in order.
    pub async fn read_runs(&self, runs: &[(BlockAddr, u32)]) -> LResult<Vec<Payload>> {
        if self.pipelined() && runs.len() > 1 {
            let reqs: Vec<_> = runs
                .iter()
                .map(|&(addr, n)| {
                    (
                        IoOp::Read,
                        addr.0 * self.sectors_per_block as u64,
                        self.sectors_per_block * n,
                        Payload::Simulated(0),
                    )
                })
                .collect();
            let mut out = Vec::with_capacity(runs.len());
            for r in self.driver.submit_batch(reqs).await {
                out.push(r?.0);
            }
            return Ok(out);
        }
        let mut out = Vec::with_capacity(runs.len());
        for &(addr, n) in runs {
            out.push(self.read_run(addr, n).await?);
        }
        Ok(out)
    }

    /// Reads the device blocks covered by `extents`, returning per run
    /// the payload (or `None` for a hole run), in extent order.
    pub async fn read_extents(&self, extents: &[Extent]) -> LResult<Vec<Option<Payload>>> {
        let runs: Vec<(BlockAddr, u32)> =
            extents.iter().filter_map(|e| e.addr.map(|a| (a, e.len))).collect();
        let mut mapped = self.read_runs(&runs).await?.into_iter();
        Ok(extents
            .iter()
            .map(|e| e.addr.map(|_| mapped.next().expect("one payload per mapped run")))
            .collect())
    }

    /// Writes one block.
    pub async fn write_block(&self, addr: BlockAddr, payload: Payload) -> LResult<()> {
        debug_assert!(addr.is_some());
        let lba = addr.0 * self.sectors_per_block as u64;
        self.driver.submit(IoOp::Write, lba, self.sectors_per_block, payload).await?;
        Ok(())
    }

    /// Writes a run of consecutive blocks, coalescing same-kind payloads
    /// into single requests (real-byte runs stay real; simulated runs
    /// stay length-only), so big sequential writes cost one controller
    /// overhead instead of one per block. With a deep driver queue the
    /// coalesced requests are additionally issued as one concurrent
    /// batch.
    pub async fn write_run(&self, start: BlockAddr, blocks: Vec<Payload>) -> LResult<()> {
        let mut reqs: Vec<(IoOp, u64, u32, Payload)> = Vec::new();
        let mut i = 0usize;
        while i < blocks.len() {
            let real = blocks[i].bytes().is_some();
            let mut j = i + 1;
            while j < blocks.len() && (blocks[j].bytes().is_some() == real) {
                j += 1;
            }
            let n = (j - i) as u32;
            let lba = (start.0 + i as u64) * self.sectors_per_block as u64;
            let payload = if real {
                let mut buf = Vec::with_capacity((n as usize) * BLOCK_SIZE as usize);
                for b in &blocks[i..j] {
                    let bytes = b.bytes().expect("run is real");
                    buf.extend_from_slice(bytes);
                    buf.resize(buf.len().next_multiple_of(BLOCK_SIZE as usize), 0);
                }
                Payload::Data(buf)
            } else {
                Payload::Simulated(n * BLOCK_SIZE)
            };
            reqs.push((IoOp::Write, lba, self.sectors_per_block * n, payload));
            i = j;
        }
        self.submit_writes(reqs).await
    }

    /// Writes blocks at arbitrary addresses (scatter), coalescing
    /// physically-consecutive same-kind payloads into single requests.
    /// Input order is preserved in the coalescing scan, so update-in-
    /// place layouts keep their write ordering semantics.
    ///
    /// At queue depth 1 nothing is coalesced or batched: each block goes
    /// out as its own request in input order, the exact pre-pipelining
    /// sequence.
    pub async fn write_scatter(&self, blocks: Vec<(BlockAddr, Payload)>) -> LResult<()> {
        let pipelined = self.pipelined();
        let mut reqs: Vec<(IoOp, u64, u32, Payload)> = Vec::new();
        let mut i = 0usize;
        while i < blocks.len() {
            let start = blocks[i].0;
            let real = blocks[i].1.bytes().is_some();
            let mut j = i + 1;
            while pipelined
                && j < blocks.len()
                && blocks[j].0 .0 == start.0 + (j - i) as u64
                && blocks[j].1.bytes().is_some() == real
            {
                j += 1;
            }
            let n = (j - i) as u32;
            let lba = start.0 * self.sectors_per_block as u64;
            let payload = if real {
                let mut buf = Vec::with_capacity((n as usize) * BLOCK_SIZE as usize);
                for (_, b) in &blocks[i..j] {
                    let bytes = b.bytes().expect("run is real");
                    buf.extend_from_slice(bytes);
                    buf.resize(buf.len().next_multiple_of(BLOCK_SIZE as usize), 0);
                }
                Payload::Data(buf)
            } else {
                Payload::Simulated(n * BLOCK_SIZE)
            };
            reqs.push((IoOp::Write, lba, self.sectors_per_block * n, payload));
            i = j;
        }
        self.submit_writes(reqs).await
    }

    /// Issues prepared write requests: one concurrent batch with a deep
    /// queue, the legacy serial sequence at depth 1.
    async fn submit_writes(&self, reqs: Vec<(IoOp, u64, u32, Payload)>) -> LResult<()> {
        if self.pipelined() && reqs.len() > 1 {
            for r in self.driver.submit_batch(reqs).await {
                r?;
            }
            return Ok(());
        }
        for (op, lba, sectors, payload) in reqs {
            self.driver.submit(op, lba, sectors, payload).await?;
        }
        Ok(())
    }

    /// Extracts block `idx` of a multi-block payload as owned bytes.
    pub fn block_bytes(payload: &Payload, idx: usize) -> LResult<Vec<u8>> {
        match payload.bytes() {
            Some(b) => {
                let lo = idx * BLOCK_SIZE as usize;
                let hi = lo + BLOCK_SIZE as usize;
                if b.len() < hi {
                    return Err(LayoutError::Corrupt(format!(
                        "payload too short: {} < {hi}",
                        b.len()
                    )));
                }
                Ok(b[lo..hi].to_vec())
            }
            None => Err(LayoutError::Corrupt("expected real bytes, got simulated".into())),
        }
    }
}
