//! Core on-disk types shared by every storage layout.

use std::fmt;

/// File-system block size in bytes (Sprite-era default).
pub const BLOCK_SIZE: u32 = 4096;

/// Direct block pointers per inode.
pub const NDIRECT: usize = 12;

/// Pointers per indirect block (`BLOCK_SIZE / 8`).
pub const NINDIRECT: usize = (BLOCK_SIZE as usize) / 8;

/// Largest representable file in blocks (direct + one indirect level).
pub const MAX_FILE_BLOCKS: u64 = NDIRECT as u64 + NINDIRECT as u64;

/// An inode number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ino(pub u64);

impl Ino {
    /// The root directory inode.
    pub const ROOT: Ino = Ino(1);
}

impl fmt::Display for Ino {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ino{}", self.0)
    }
}

/// A disk address in file-system blocks (not sectors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// Sentinel for "no block assigned".
    pub const NONE: BlockAddr = BlockAddr(u64::MAX);

    /// True if this is a real address.
    pub fn is_some(self) -> bool {
        self != BlockAddr::NONE
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_some() {
            write!(f, "blk{}", self.0)
        } else {
            write!(f, "blk-")
        }
    }
}

/// File types (each becomes its own instantiated-file class in the core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileKind {
    /// Ordinary file.
    Regular,
    /// Directory.
    Directory,
    /// Symbolic link (target stored inline in the first block).
    Symlink,
    /// Continuous-media file (QoS-aware active file in the core).
    Multimedia,
}

impl FileKind {
    /// Stable on-disk tag.
    pub fn tag(self) -> u8 {
        match self {
            FileKind::Regular => 0,
            FileKind::Directory => 1,
            FileKind::Symlink => 2,
            FileKind::Multimedia => 3,
        }
    }

    /// Parses an on-disk tag.
    pub fn from_tag(t: u8) -> Option<FileKind> {
        match t {
            0 => Some(FileKind::Regular),
            1 => Some(FileKind::Directory),
            2 => Some(FileKind::Symlink),
            3 => Some(FileKind::Multimedia),
            _ => None,
        }
    }
}

/// Where a file block index lands within the inode's pointer tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockSlot {
    /// One of the inode's direct pointers.
    Direct(usize),
    /// A slot in the single indirect block.
    Indirect(usize),
}

/// Resolves a file block index to its pointer slot.
///
/// Returns `None` beyond [`MAX_FILE_BLOCKS`].
pub fn block_slot(blk: u64) -> Option<BlockSlot> {
    if blk < NDIRECT as u64 {
        Some(BlockSlot::Direct(blk as usize))
    } else if blk < MAX_FILE_BLOCKS {
        Some(BlockSlot::Indirect((blk - NDIRECT as u64) as usize))
    } else {
        None
    }
}

/// Encoding helpers for fixed-layout on-disk structures.
pub mod codec {
    /// Writes a `u64` little-endian at `off`.
    pub fn put_u64(buf: &mut [u8], off: usize, v: u64) {
        buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a `u64` little-endian at `off`.
    pub fn get_u64(buf: &[u8], off: usize) -> u64 {
        u64::from_le_bytes(buf[off..off + 8].try_into().expect("8 bytes"))
    }

    /// Writes a `u32` little-endian at `off`.
    pub fn put_u32(buf: &mut [u8], off: usize, v: u32) {
        buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a `u32` little-endian at `off`.
    pub fn get_u32(buf: &[u8], off: usize) -> u32 {
        u32::from_le_bytes(buf[off..off + 4].try_into().expect("4 bytes"))
    }

    /// Writes a `u16` little-endian at `off`.
    pub fn put_u16(buf: &mut [u8], off: usize, v: u16) {
        buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a `u16` little-endian at `off`.
    pub fn get_u16(buf: &[u8], off: usize) -> u16 {
        u16::from_le_bytes(buf[off..off + 2].try_into().expect("2 bytes"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_resolution() {
        assert_eq!(block_slot(0), Some(BlockSlot::Direct(0)));
        assert_eq!(block_slot(11), Some(BlockSlot::Direct(11)));
        assert_eq!(block_slot(12), Some(BlockSlot::Indirect(0)));
        assert_eq!(block_slot(12 + 511), Some(BlockSlot::Indirect(511)));
        assert_eq!(block_slot(MAX_FILE_BLOCKS - 1), Some(BlockSlot::Indirect(NINDIRECT - 1)));
        assert_eq!(block_slot(MAX_FILE_BLOCKS), None);
    }

    #[test]
    fn max_file_size_is_about_2mb() {
        // 12 direct + 512 indirect pointers at 4 KB blocks.
        let bytes = MAX_FILE_BLOCKS * BLOCK_SIZE as u64;
        assert!(bytes > 2_000_000 && bytes < 2_300_000, "{bytes}");
    }

    #[test]
    fn kind_tags_round_trip() {
        for k in [FileKind::Regular, FileKind::Directory, FileKind::Symlink, FileKind::Multimedia] {
            assert_eq!(FileKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(FileKind::from_tag(99), None);
    }

    #[test]
    fn codec_round_trips() {
        let mut buf = vec![0u8; 32];
        codec::put_u64(&mut buf, 0, 0xdead_beef_cafe_f00d);
        codec::put_u32(&mut buf, 8, 0x1234_5678);
        codec::put_u16(&mut buf, 12, 0xabcd);
        assert_eq!(codec::get_u64(&buf, 0), 0xdead_beef_cafe_f00d);
        assert_eq!(codec::get_u32(&buf, 8), 0x1234_5678);
        assert_eq!(codec::get_u16(&buf, 12), 0xabcd);
    }
}
