//! The paper's simulator storage layout.
//!
//! "A storage-layout module can also be instantiated for a simulator. In
//! this case, all information that would have been read or written to
//! disk is simulated by making educated guesses. If, for example, a file
//! is accessed that is not yet known by the storage-layout module, it
//! picks a random location on disk. Once an initial location has been
//! chosen for a file, the simulator sticks to those addresses." (§2)
//!
//! Metadata lives purely in memory; only file data generates disk I/O.

use std::collections::HashMap;

use cnp_disk::{DiskDriver, Payload};
use rand::rngs::StdRng;
use rand::Rng;

use crate::error::{LResult, LayoutError};
use crate::inode::Inode;
use crate::io::BlockIo;
use crate::layout::{LayoutStats, StorageLayout};
use crate::types::{BlockAddr, FileKind, Ino, MAX_FILE_BLOCKS};

/// The educated-guess layout.
pub struct SimGuessLayout {
    io: BlockIo,
    rng: StdRng,
    inodes: HashMap<Ino, Inode>,
    base: HashMap<Ino, u64>,
    next_ino: u64,
    stats: LayoutStats,
}

impl SimGuessLayout {
    /// Creates the layout over a driver with a deterministic RNG.
    pub fn new(driver: DiskDriver, rng: StdRng) -> Self {
        SimGuessLayout {
            io: BlockIo::new(driver),
            rng,
            inodes: HashMap::new(),
            base: HashMap::new(),
            next_ino: 2, // Ino(1) is the root.
            stats: LayoutStats::default(),
        }
    }

    /// Picks (once) and remembers a random contiguous home for a file.
    fn base_of(&mut self, ino: Ino) -> u64 {
        if let Some(&b) = self.base.get(&ino) {
            return b;
        }
        let cap = self.io.capacity_blocks();
        let span = cap.saturating_sub(MAX_FILE_BLOCKS).max(1);
        let b = self.rng.gen_range(0..span);
        self.base.insert(ino, b);
        b
    }
}

impl StorageLayout for SimGuessLayout {
    fn name(&self) -> &'static str {
        "sim-guess"
    }

    async fn format(&mut self) -> LResult<()> {
        self.inodes.clear();
        self.base.clear();
        self.next_ino = 2;
        let root = Inode::new(Ino::ROOT, FileKind::Directory);
        self.inodes.insert(Ino::ROOT, root);
        Ok(())
    }

    async fn mount(&mut self) -> LResult<()> {
        // Nothing on disk to read: guesses persist only per instance.
        if self.inodes.is_empty() {
            return Err(LayoutError::NotFormatted);
        }
        Ok(())
    }

    async fn unmount(&mut self) -> LResult<()> {
        Ok(())
    }

    async fn sync(&mut self) -> LResult<()> {
        Ok(())
    }

    fn alloc_ino(&mut self, kind: FileKind, now_ns: u64) -> LResult<Inode> {
        let ino = Ino(self.next_ino);
        self.next_ino += 1;
        let mut inode = Inode::new(ino, kind);
        inode.mtime = now_ns;
        self.inodes.insert(ino, inode.clone());
        Ok(inode)
    }

    async fn get_inode(&mut self, ino: Ino) -> LResult<Inode> {
        self.inodes.get(&ino).cloned().ok_or(LayoutError::BadInode(ino))
    }

    async fn put_inode(&mut self, inode: &Inode) -> LResult<()> {
        if !self.inodes.contains_key(&inode.ino) {
            return Err(LayoutError::BadInode(inode.ino));
        }
        self.inodes.insert(inode.ino, inode.clone());
        Ok(())
    }

    async fn free_inode(&mut self, ino: Ino) -> LResult<()> {
        self.inodes.remove(&ino).ok_or(LayoutError::BadInode(ino))?;
        self.base.remove(&ino);
        Ok(())
    }

    async fn map_block(&mut self, inode: &Inode, blk: u64) -> LResult<Option<BlockAddr>> {
        if blk >= MAX_FILE_BLOCKS {
            return Err(LayoutError::FileTooBig(blk));
        }
        if blk >= inode.blocks() {
            return Ok(None);
        }
        let base = self.base_of(inode.ino);
        Ok(Some(BlockAddr(base + blk)))
    }

    async fn read_file_block(&mut self, inode: &Inode, blk: u64) -> LResult<Option<Payload>> {
        let Some(addr) = self.map_block(inode, blk).await? else {
            return Ok(None);
        };
        self.stats.data_reads += 1;
        Ok(Some(self.io.read_block(addr).await?))
    }

    async fn write_file_blocks(
        &mut self,
        inode: &mut Inode,
        blocks: Vec<(u64, Payload)>,
    ) -> LResult<()> {
        let base = self.base_of(inode.ino);
        // Coalesce contiguous block indices into runs.
        let mut blocks = blocks;
        blocks.sort_by_key(|(b, _)| *b);
        let mut i = 0;
        while i < blocks.len() {
            if blocks[i].0 >= MAX_FILE_BLOCKS {
                return Err(LayoutError::FileTooBig(blocks[i].0));
            }
            let mut j = i + 1;
            while j < blocks.len() && blocks[j].0 == blocks[j - 1].0 + 1 {
                j += 1;
            }
            let start = BlockAddr(base + blocks[i].0);
            let payloads: Vec<Payload> = blocks[i..j].iter().map(|(_, p)| p.clone()).collect();
            self.stats.data_writes += (j - i) as u64;
            self.io.write_run(start, payloads).await?;
            i = j;
        }
        self.inodes.insert(inode.ino, inode.clone());
        Ok(())
    }

    async fn truncate(&mut self, inode: &mut Inode, _new_blocks: u64) -> LResult<()> {
        self.inodes.insert(inode.ino, inode.clone());
        Ok(())
    }

    fn allocated_inos(&self) -> Vec<Ino> {
        let mut inos: Vec<Ino> = self.inodes.keys().copied().collect();
        inos.sort_unstable();
        inos
    }

    fn stats(&self) -> LayoutStats {
        self.stats
    }

    fn driver(&self) -> &DiskDriver {
        self.io.driver()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnp_disk::{sim_disk_driver, CLook, Hp97560};
    use cnp_sim::{Sim, SimTime};
    use rand::SeedableRng;

    fn run_sim<F, Fut>(f: F)
    where
        F: FnOnce(SimGuessLayout) -> Fut + 'static,
        Fut: std::future::Future<Output = ()> + 'static,
    {
        let sim = Sim::new(5);
        let h = sim.handle();
        let driver = sim_disk_driver(&h, "d0", Box::new(Hp97560::new()), Box::new(CLook));
        let layout = SimGuessLayout::new(driver, StdRng::seed_from_u64(9));
        h.spawn("test", async move {
            f(layout).await;
        });
        sim.run_until(SimTime::from_nanos(u64::MAX / 2));
    }

    #[test]
    fn file_base_is_sticky() {
        run_sim(|mut l| async move {
            l.format().await.unwrap();
            let mut ino = l.alloc_ino(FileKind::Regular, 0).unwrap();
            ino.size = 8 * 4096;
            let a1 = l.map_block(&ino, 0).await.unwrap().unwrap();
            let a2 = l.map_block(&ino, 0).await.unwrap().unwrap();
            assert_eq!(a1, a2, "location must stick once chosen");
            let a3 = l.map_block(&ino, 5).await.unwrap().unwrap();
            assert_eq!(a3.0, a1.0 + 5, "blocks are contiguous from the base");
        });
    }

    #[test]
    fn write_read_cycle() {
        run_sim(|mut l| async move {
            l.format().await.unwrap();
            let mut ino = l.alloc_ino(FileKind::Regular, 0).unwrap();
            ino.size = 3 * 4096;
            l.write_file_blocks(
                &mut ino,
                vec![
                    (0, Payload::Simulated(4096)),
                    (1, Payload::Simulated(4096)),
                    (2, Payload::Simulated(4096)),
                ],
            )
            .await
            .unwrap();
            let p = l.read_file_block(&ino, 1).await.unwrap().unwrap();
            assert_eq!(p.len(), 4096);
            assert!(l.read_file_block(&ino, 3).await.unwrap().is_none(), "hole");
            assert_eq!(l.stats().data_writes, 3);
        });
    }

    #[test]
    fn inode_lifecycle() {
        run_sim(|mut l| async move {
            l.format().await.unwrap();
            let root = l.get_inode(Ino::ROOT).await.unwrap();
            assert_eq!(root.kind, FileKind::Directory);
            let ino = l.alloc_ino(FileKind::Regular, 7).unwrap();
            let got = l.get_inode(ino.ino).await.unwrap();
            assert_eq!(got.mtime, 7);
            l.free_inode(ino.ino).await.unwrap();
            assert!(matches!(l.get_inode(ino.ino).await, Err(LayoutError::BadInode(_))));
        });
    }
}
