//! # cnp-layout — storage layouts on a raw disk
//!
//! The paper's storage-layout component (§2): an abstract interface with
//! three derived layouts —
//!
//! * [`lfs`]: the segmented log-structured file system the paper's
//!   experiments run ("On all file-systems we ran a segmented LFS"),
//!   with IFILE inode map, checkpoint regions, and a pluggable cleaner;
//! * [`ffs`]: an FFS-like update-in-place layout with allocation groups;
//! * [`simguess`]: the paper's off-line layout that "picks a random
//!   location on disk" and sticks to it.
//!
//! Shared building blocks: [`inode`]s (direct + single-indirect; ≈4 MB
//! max file, documented in DESIGN.md), [`dir`] entry codecs, and
//! block-granular I/O over `cnp-disk` drivers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dir;
mod error;
pub mod ffs;
pub mod inode;
mod io;
mod layout;
pub mod lfs;
pub mod simguess;
pub mod types;

pub use error::{LResult, LayoutError};
pub use ffs::{FfsLayout, FfsParams};
pub use inode::{Inode, INODES_PER_BLOCK, INODE_SIZE};
pub use io::BlockIo;
pub use layout::{Extent, Layout, LayoutStats, RecoveryStats, StorageLayout};
pub use lfs::{CleanerPolicy, LfsLayout, LfsParams};
pub use simguess::SimGuessLayout;
pub use types::{
    block_slot, BlockAddr, BlockSlot, FileKind, Ino, BLOCK_SIZE, MAX_FILE_BLOCKS, NDIRECT,
    NINDIRECT,
};
