//! An FFS-like update-in-place layout with allocation groups.
//!
//! The paper positions this as the alternative derived layout: "To
//! implement other storage-layouts (such as a Unix FFS …), a new derived
//! storage-layout class needs to be written" (§2). It also enables a
//! Seltzer-style logging-vs-clustering comparison against the LFS.
//!
//! Disk map: superblock | inode bitmap | block bitmap | inode table |
//! data blocks (divided into allocation groups). Blocks are updated in
//! place; a file's blocks are allocated near its group (ino-hashed),
//! approximating FFS cylinder-group locality.

use cnp_disk::{DiskDriver, Payload};
use cnp_sim::Handle;

use crate::error::{LResult, LayoutError};
use crate::inode::{Inode, INODES_PER_BLOCK, INODE_SIZE};
use crate::io::BlockIo;
use crate::layout::{LayoutStats, StorageLayout};
use crate::types::codec::{get_u32, get_u64, put_u32, put_u64};
use crate::types::{block_slot, BlockAddr, BlockSlot, FileKind, Ino, BLOCK_SIZE, NINDIRECT};

const FFS_MAGIC: u32 = 0xff5_0001;
const BITS_PER_BLOCK: u64 = BLOCK_SIZE as u64 * 8;

/// FFS-like tuning parameters.
#[derive(Debug, Clone)]
pub struct FfsParams {
    /// Maximum number of inodes.
    pub ninodes: u64,
    /// Number of allocation groups.
    pub ngroups: u32,
}

impl Default for FfsParams {
    fn default() -> Self {
        FfsParams { ninodes: 65_536, ngroups: 32 }
    }
}

struct Geometry {
    ibitmap_start: u64,
    ibitmap_blocks: u64,
    bbitmap_start: u64,
    bbitmap_blocks: u64,
    itable_start: u64,
    data_start: u64,
    nblocks: u64,
}

impl Geometry {
    fn compute(capacity_blocks: u64, ninodes: u64) -> Geometry {
        let ibitmap_start = 1;
        let ibitmap_blocks = ninodes.div_ceil(BITS_PER_BLOCK);
        let bbitmap_start = ibitmap_start + ibitmap_blocks;
        let bbitmap_blocks = capacity_blocks.div_ceil(BITS_PER_BLOCK);
        let itable_start = bbitmap_start + bbitmap_blocks;
        let itable_blocks = ninodes.div_ceil(INODES_PER_BLOCK as u64);
        let data_start = itable_start + itable_blocks;
        Geometry {
            ibitmap_start,
            ibitmap_blocks,
            bbitmap_start,
            bbitmap_blocks,
            itable_start,
            data_start,
            nblocks: capacity_blocks,
        }
    }
}

/// A simple in-memory bitmap with dirty tracking.
struct Bitmap {
    bits: Vec<u64>,
    dirty: bool,
}

impl Bitmap {
    fn new(n: u64) -> Bitmap {
        Bitmap { bits: vec![0; (n as usize).div_ceil(64)], dirty: false }
    }

    fn get(&self, i: u64) -> bool {
        (self.bits[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    fn set(&mut self, i: u64, v: bool) {
        let w = &mut self.bits[(i / 64) as usize];
        if v {
            *w |= 1 << (i % 64);
        } else {
            *w &= !(1 << (i % 64));
        }
        self.dirty = true;
    }

    fn to_blocks(&self) -> Vec<Vec<u8>> {
        let words_per_block = BLOCK_SIZE as usize / 8;
        self.bits
            .chunks(words_per_block)
            .map(|chunk| {
                let mut b = vec![0u8; BLOCK_SIZE as usize];
                for (i, w) in chunk.iter().enumerate() {
                    put_u64(&mut b, i * 8, *w);
                }
                b
            })
            .collect()
    }

    fn from_blocks(blocks: &[Vec<u8>], n: u64) -> Bitmap {
        let words_per_block = BLOCK_SIZE as usize / 8;
        let mut bits = Vec::with_capacity((n as usize).div_ceil(64));
        'outer: for b in blocks {
            for i in 0..words_per_block {
                bits.push(get_u64(b, i * 8));
                if bits.len() * 64 >= n as usize + 64 {
                    break 'outer;
                }
            }
        }
        bits.resize((n as usize).div_ceil(64), 0);
        Bitmap { bits, dirty: false }
    }
}

/// The FFS-like layout.
pub struct FfsLayout {
    handle: Handle,
    io: BlockIo,
    params: FfsParams,
    geo: Geometry,
    ibitmap: Bitmap,
    bbitmap: Bitmap,
    mounted: bool,
    stats: LayoutStats,
}

impl FfsLayout {
    /// Creates an FFS-like layout over `driver`.
    pub fn new(handle: &Handle, driver: DiskDriver, params: FfsParams) -> Self {
        let io = BlockIo::new(driver);
        let geo = Geometry::compute(io.capacity_blocks(), params.ninodes);
        assert!(geo.data_start < geo.nblocks, "disk too small for FFS tables");
        FfsLayout {
            handle: handle.clone(),
            io,
            ibitmap: Bitmap::new(params.ninodes),
            bbitmap: Bitmap::new(geo.nblocks),
            params,
            geo,
            mounted: false,
            stats: LayoutStats::default(),
        }
    }

    fn group_of(&self, ino: Ino) -> u64 {
        let data_blocks = self.geo.nblocks - self.geo.data_start;
        let group_span = (data_blocks / self.params.ngroups as u64).max(1);
        let g = ino.0 % self.params.ngroups as u64;
        self.geo.data_start + g * group_span
    }

    /// Allocates a data block, scanning circularly from `hint`.
    fn alloc_block(&mut self, hint: u64) -> LResult<BlockAddr> {
        let lo = self.geo.data_start;
        let n = self.geo.nblocks - lo;
        let start = hint.clamp(lo, self.geo.nblocks - 1) - lo;
        for off in 0..n {
            let b = lo + (start + off) % n;
            if !self.bbitmap.get(b) {
                self.bbitmap.set(b, true);
                return Ok(BlockAddr(b));
            }
        }
        Err(LayoutError::NoSpace)
    }

    fn free_block(&mut self, addr: BlockAddr) {
        if addr.is_some() && addr.0 >= self.geo.data_start {
            self.bbitmap.set(addr.0, false);
        }
    }

    fn inode_addr(&self, ino: Ino) -> (BlockAddr, usize) {
        let blk = self.geo.itable_start + ino.0 / INODES_PER_BLOCK as u64;
        (BlockAddr(blk), (ino.0 % INODES_PER_BLOCK as u64) as usize)
    }

    async fn read_indirect(&mut self, addr: BlockAddr) -> LResult<Vec<u64>> {
        let p = self.io.read_block(addr).await?;
        self.stats.meta_reads += 1;
        let bytes = p.bytes().ok_or_else(|| LayoutError::Corrupt("indirect lost".into()))?;
        Ok((0..NINDIRECT).map(|i| get_u64(bytes, i * 8)).collect())
    }

    async fn write_indirect(&mut self, addr: BlockAddr, table: &[u64]) -> LResult<()> {
        let mut bytes = vec![0u8; BLOCK_SIZE as usize];
        for (i, v) in table.iter().enumerate() {
            put_u64(&mut bytes, i * 8, *v);
        }
        self.stats.meta_writes += 1;
        self.io.write_block(addr, Payload::Data(bytes)).await
    }

    async fn write_bitmaps(&mut self) -> LResult<()> {
        if self.ibitmap.dirty {
            for (i, b) in self.ibitmap.to_blocks().into_iter().enumerate() {
                if (i as u64) < self.geo.ibitmap_blocks {
                    self.io
                        .write_block(BlockAddr(self.geo.ibitmap_start + i as u64), Payload::Data(b))
                        .await?;
                    self.stats.meta_writes += 1;
                }
            }
            self.ibitmap.dirty = false;
        }
        if self.bbitmap.dirty {
            for (i, b) in self.bbitmap.to_blocks().into_iter().enumerate() {
                if (i as u64) < self.geo.bbitmap_blocks {
                    self.io
                        .write_block(BlockAddr(self.geo.bbitmap_start + i as u64), Payload::Data(b))
                        .await?;
                    self.stats.meta_writes += 1;
                }
            }
            self.bbitmap.dirty = false;
        }
        Ok(())
    }

    fn sb_block(&self) -> Vec<u8> {
        let mut b = vec![0u8; BLOCK_SIZE as usize];
        put_u32(&mut b, 0, FFS_MAGIC);
        put_u64(&mut b, 8, self.params.ninodes);
        put_u32(&mut b, 16, self.params.ngroups);
        put_u64(&mut b, 24, self.geo.nblocks);
        b
    }
}

impl StorageLayout for FfsLayout {
    fn name(&self) -> &'static str {
        "ffs"
    }

    async fn format(&mut self) -> LResult<()> {
        self.io.write_block(BlockAddr(0), Payload::Data(self.sb_block())).await?;
        self.ibitmap = Bitmap::new(self.params.ninodes);
        self.bbitmap = Bitmap::new(self.geo.nblocks);
        // Inodes 0 (reserved) and 1 (root) are taken. Both bitmaps are
        // forced dirty so a freshly formatted disk always mounts.
        self.ibitmap.set(0, true);
        self.ibitmap.set(1, true);
        self.bbitmap.dirty = true;
        self.mounted = true;
        let mut root = Inode::new(Ino::ROOT, FileKind::Directory);
        root.mtime = self.handle.now().as_nanos();
        self.put_inode(&root).await?;
        self.write_bitmaps().await?;
        Ok(())
    }

    async fn mount(&mut self) -> LResult<()> {
        let p = self.io.read_block(BlockAddr(0)).await?;
        let bytes = p.bytes().ok_or(LayoutError::NotFormatted)?;
        if get_u32(bytes, 0) != FFS_MAGIC {
            return Err(LayoutError::NotFormatted);
        }
        if get_u64(bytes, 8) != self.params.ninodes || get_u64(bytes, 24) != self.geo.nblocks {
            return Err(LayoutError::Corrupt("superblock mismatch".into()));
        }
        let mut iblocks = Vec::new();
        for i in 0..self.geo.ibitmap_blocks {
            let p = self.io.read_block(BlockAddr(self.geo.ibitmap_start + i)).await?;
            self.stats.meta_reads += 1;
            iblocks.push(
                p.bytes().ok_or_else(|| LayoutError::Corrupt("ibitmap lost".into()))?.to_vec(),
            );
        }
        self.ibitmap = Bitmap::from_blocks(&iblocks, self.params.ninodes);
        let mut bblocks = Vec::new();
        for i in 0..self.geo.bbitmap_blocks {
            let p = self.io.read_block(BlockAddr(self.geo.bbitmap_start + i)).await?;
            self.stats.meta_reads += 1;
            bblocks.push(
                p.bytes().ok_or_else(|| LayoutError::Corrupt("bbitmap lost".into()))?.to_vec(),
            );
        }
        self.bbitmap = Bitmap::from_blocks(&bblocks, self.geo.nblocks);
        self.mounted = true;
        Ok(())
    }

    async fn recover(&mut self) -> LResult<crate::layout::RecoveryStats> {
        // Validate the superblock only; the on-disk bitmaps may be
        // arbitrarily stale or even unwritten (they are durable only at
        // sync/unmount), so recovery never reads them.
        let p = self.io.read_block(BlockAddr(0)).await?;
        let bytes = p.bytes().ok_or(LayoutError::NotFormatted)?;
        if get_u32(bytes, 0) != FFS_MAGIC {
            return Err(LayoutError::NotFormatted);
        }
        if get_u64(bytes, 8) != self.params.ninodes || get_u64(bytes, 24) != self.geo.nblocks {
            return Err(LayoutError::Corrupt("superblock mismatch".into()));
        }
        self.mounted = true;
        // Crash recovery = fsck pass 1: rebuild both bitmaps from the
        // inode table, the authoritative record — every
        // create/write/delete updates it in place immediately.
        let mut ibm = Bitmap::new(self.params.ninodes);
        let mut bbm = Bitmap::new(self.geo.nblocks);
        ibm.set(0, true); // Reserved.
        for b in 0..self.geo.data_start {
            bbm.set(b, true); // Superblock, bitmaps, inode table.
        }
        let mut stats = crate::layout::RecoveryStats::default();
        let itable_blocks = self.params.ninodes.div_ceil(INODES_PER_BLOCK as u64);
        let mut indirects: Vec<BlockAddr> = Vec::new();
        for tb in 0..itable_blocks {
            let addr = BlockAddr(self.geo.itable_start + tb);
            let p = self.io.read_block(addr).await?;
            let Some(bytes) = p.bytes() else { continue };
            self.stats.meta_reads += 1;
            for slot in 0..INODES_PER_BLOCK {
                let ino = tb * INODES_PER_BLOCK as u64 + slot as u64;
                let off = slot * INODE_SIZE;
                if bytes.len() < off + INODE_SIZE {
                    break;
                }
                let Some(inode) = Inode::from_bytes(&bytes[off..off + INODE_SIZE]) else {
                    continue;
                };
                if inode.ino.0 != ino {
                    continue; // Slot identity mismatch: stale garbage.
                }
                ibm.set(ino, true);
                stats.recovered_inodes += 1;
                for d in inode.direct {
                    if d.is_some() && d.0 < self.geo.nblocks {
                        bbm.set(d.0, true);
                    }
                }
                if inode.indirect.is_some() && inode.indirect.0 < self.geo.nblocks {
                    bbm.set(inode.indirect.0, true);
                    indirects.push(inode.indirect);
                }
            }
        }
        for iaddr in indirects {
            let Ok(table) = self.read_indirect(iaddr).await else { continue };
            for v in table {
                if v != BlockAddr::NONE.0 && v < self.geo.nblocks {
                    bbm.set(v, true);
                }
            }
        }
        self.ibitmap = ibm;
        self.bbitmap = bbm;
        self.ibitmap.dirty = true;
        self.bbitmap.dirty = true;
        self.write_bitmaps().await?;
        Ok(stats)
    }

    async fn unmount(&mut self) -> LResult<()> {
        self.write_bitmaps().await?;
        self.mounted = false;
        Ok(())
    }

    async fn sync(&mut self) -> LResult<()> {
        self.write_bitmaps().await
    }

    fn alloc_ino(&mut self, kind: FileKind, now_ns: u64) -> LResult<Inode> {
        for i in 2..self.params.ninodes {
            if !self.ibitmap.get(i) {
                self.ibitmap.set(i, true);
                let mut inode = Inode::new(Ino(i), kind);
                inode.mtime = now_ns;
                return Ok(inode);
            }
        }
        Err(LayoutError::NoSpace)
    }

    async fn get_inode(&mut self, ino: Ino) -> LResult<Inode> {
        if ino.0 >= self.params.ninodes || !self.ibitmap.get(ino.0) {
            return Err(LayoutError::BadInode(ino));
        }
        let (addr, slot) = self.inode_addr(ino);
        let p = self.io.read_block(addr).await?;
        self.stats.meta_reads += 1;
        let bytes = p.bytes().ok_or_else(|| LayoutError::Corrupt("itable lost".into()))?;
        Inode::from_bytes(&bytes[slot * INODE_SIZE..(slot + 1) * INODE_SIZE])
            .ok_or(LayoutError::BadInode(ino))
    }

    async fn put_inode(&mut self, inode: &Inode) -> LResult<()> {
        let (addr, slot) = self.inode_addr(inode.ino);
        // Read-modify-write the inode table block.
        let p = self.io.read_block(addr).await?;
        self.stats.meta_reads += 1;
        let mut bytes = match p.bytes() {
            Some(b) => b.to_vec(),
            None => vec![0u8; BLOCK_SIZE as usize],
        };
        bytes[slot * INODE_SIZE..(slot + 1) * INODE_SIZE].copy_from_slice(&inode.to_bytes());
        self.stats.meta_writes += 1;
        self.io.write_block(addr, Payload::Data(bytes)).await
    }

    async fn free_inode(&mut self, ino: Ino) -> LResult<()> {
        let inode = self.get_inode(ino).await?;
        for d in inode.direct {
            self.free_block(d);
        }
        if inode.indirect.is_some() {
            let table = self.read_indirect(inode.indirect).await?;
            for v in table {
                if v != BlockAddr::NONE.0 {
                    self.free_block(BlockAddr(v));
                }
            }
            self.free_block(inode.indirect);
        }
        self.ibitmap.set(ino.0, false);
        // Tombstone the on-disk inode so crash recovery's table scan
        // cannot resurrect it (the bitmap alone is only durable at sync).
        let (addr, slot) = self.inode_addr(ino);
        let p = self.io.read_block(addr).await?;
        self.stats.meta_reads += 1;
        let mut bytes = match p.bytes() {
            Some(b) => b.to_vec(),
            None => return Ok(()),
        };
        bytes[slot * INODE_SIZE..(slot + 1) * INODE_SIZE].fill(0);
        self.stats.meta_writes += 1;
        self.io.write_block(addr, Payload::Data(bytes)).await?;
        Ok(())
    }

    async fn map_block(&mut self, inode: &Inode, blk: u64) -> LResult<Option<BlockAddr>> {
        match block_slot(blk).ok_or(LayoutError::FileTooBig(blk))? {
            BlockSlot::Direct(i) => {
                Ok(if inode.direct[i].is_some() { Some(inode.direct[i]) } else { None })
            }
            BlockSlot::Indirect(s) => {
                if !inode.indirect.is_some() {
                    return Ok(None);
                }
                let t = self.read_indirect(inode.indirect).await?;
                let v = t[s];
                Ok(if v == BlockAddr::NONE.0 { None } else { Some(BlockAddr(v)) })
            }
        }
    }

    async fn read_file_block(&mut self, inode: &Inode, blk: u64) -> LResult<Option<Payload>> {
        let Some(addr) = self.map_block(inode, blk).await? else { return Ok(None) };
        self.stats.data_reads += 1;
        Ok(Some(self.io.read_block(addr).await?))
    }

    async fn write_file_blocks(
        &mut self,
        inode: &mut Inode,
        mut blocks: Vec<(u64, Payload)>,
    ) -> LResult<()> {
        let sp = self.handle.trace_span("layout:write");
        blocks.sort_by_key(|(b, _)| *b);
        let hint_base = self.group_of(inode.ino);
        let mut table: Option<Vec<u64>> = None;
        let mut table_dirty = false;
        // With a deep driver queue, allocation decisions run first and
        // the data writes go out as one scatter-gather batch. At depth 1
        // each write is issued inline instead, preserving the legacy
        // request sequence exactly (notably: an indirect-table read mid
        // loop stays *between* the data writes, not before them).
        let batched = self.io.pipelined();
        let mut pending: Vec<(BlockAddr, Payload)> = Vec::new();
        for (blk, payload) in blocks {
            let slot = block_slot(blk).ok_or(LayoutError::FileTooBig(blk))?;
            let existing = match slot {
                BlockSlot::Direct(i) => inode.direct[i],
                BlockSlot::Indirect(s) => {
                    if table.is_none() {
                        table = Some(if inode.indirect.is_some() {
                            self.read_indirect(inode.indirect).await?
                        } else {
                            vec![BlockAddr::NONE.0; NINDIRECT]
                        });
                    }
                    let v = table.as_ref().expect("just set")[s];
                    if v == BlockAddr::NONE.0 {
                        BlockAddr::NONE
                    } else {
                        BlockAddr(v)
                    }
                }
            };
            let addr = if existing.is_some() {
                existing // Update in place: the defining FFS behaviour.
            } else {
                // Allocate near the last block or the group base.
                let hint = match slot {
                    BlockSlot::Direct(i) if i > 0 && inode.direct[i - 1].is_some() => {
                        inode.direct[i - 1].0 + 1
                    }
                    _ => hint_base,
                };
                let a = self.alloc_block(hint)?;
                match slot {
                    BlockSlot::Direct(i) => inode.direct[i] = a,
                    BlockSlot::Indirect(s) => {
                        table.as_mut().expect("loaded above")[s] = a.0;
                        table_dirty = true;
                    }
                }
                a
            };
            self.stats.data_writes += 1;
            if batched {
                pending.push((addr, payload));
            } else {
                self.io.write_block(addr, payload).await?;
            }
        }
        if batched {
            self.io.write_scatter(pending).await?;
        }
        if table_dirty {
            if !inode.indirect.is_some() {
                inode.indirect = self.alloc_block(hint_base)?;
            }
            let t = table.expect("dirty implies loaded");
            let iaddr = inode.indirect;
            self.write_indirect(iaddr, &t).await?;
        }
        inode.mtime = self.handle.now().as_nanos();
        self.put_inode(inode).await?;
        self.handle.trace_exit(sp);
        Ok(())
    }

    async fn truncate(&mut self, inode: &mut Inode, new_blocks: u64) -> LResult<()> {
        let old_blocks = inode.blocks();
        for blk in new_blocks..old_blocks {
            if let BlockSlot::Direct(i) = block_slot(blk).ok_or(LayoutError::FileTooBig(blk))? {
                self.free_block(inode.direct[i]);
                inode.direct[i] = BlockAddr::NONE;
            }
        }
        if inode.indirect.is_some() {
            let keep = new_blocks > crate::types::NDIRECT as u64;
            let mut t = self.read_indirect(inode.indirect).await?;
            let first_dead = new_blocks.saturating_sub(crate::types::NDIRECT as u64) as usize;
            let mut dead = Vec::new();
            for slot in t.iter_mut().skip(first_dead) {
                if *slot != BlockAddr::NONE.0 {
                    dead.push(BlockAddr(*slot));
                    *slot = BlockAddr::NONE.0;
                }
            }
            for addr in dead {
                self.free_block(addr);
            }
            if keep {
                let iaddr = inode.indirect;
                self.write_indirect(iaddr, &t).await?;
            } else {
                self.free_block(inode.indirect);
                inode.indirect = BlockAddr::NONE;
            }
        }
        inode.size = new_blocks * BLOCK_SIZE as u64;
        inode.mtime = self.handle.now().as_nanos();
        self.put_inode(inode).await?;
        Ok(())
    }

    fn allocated_inos(&self) -> Vec<Ino> {
        (0..self.params.ninodes).filter(|&i| self.ibitmap.get(i)).map(Ino).collect()
    }

    fn stats(&self) -> LayoutStats {
        self.stats
    }

    fn driver(&self) -> &DiskDriver {
        self.io.driver()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnp_disk::{sim_disk_driver, CLook, Hp97560};
    use cnp_sim::{Sim, SimTime};

    fn run_ffs<F, Fut>(f: F)
    where
        F: FnOnce(cnp_sim::Handle, FfsLayout) -> Fut + 'static,
        Fut: std::future::Future<Output = ()> + 'static,
    {
        let sim = Sim::new(23);
        let h = sim.handle();
        let driver = sim_disk_driver(&h, "d0", Box::new(Hp97560::new()), Box::new(CLook));
        let driver2 = driver.clone();
        let layout = FfsLayout::new(&h, driver, FfsParams::default());
        let h2 = h.clone();
        let done = std::rc::Rc::new(std::cell::Cell::new(false));
        let done2 = done.clone();
        h.spawn("test", async move {
            f(h2, layout).await;
            done2.set(true);
            driver2.shutdown();
        });
        sim.run_until(SimTime::from_nanos(u64::MAX / 2));
        assert!(done.get(), "test body did not complete");
    }

    fn data_block(tag: u8) -> Payload {
        Payload::Data(vec![tag; BLOCK_SIZE as usize])
    }

    #[test]
    fn format_and_root() {
        run_ffs(|_h, mut ffs| async move {
            ffs.format().await.unwrap();
            let root = ffs.get_inode(Ino::ROOT).await.unwrap();
            assert_eq!(root.kind, FileKind::Directory);
        });
    }

    #[test]
    fn in_place_overwrite_keeps_address() {
        run_ffs(|_h, mut ffs| async move {
            ffs.format().await.unwrap();
            let mut f = ffs.alloc_ino(FileKind::Regular, 0).unwrap();
            f.size = BLOCK_SIZE as u64;
            ffs.write_file_blocks(&mut f, vec![(0, data_block(1))]).await.unwrap();
            let a1 = ffs.map_block(&f, 0).await.unwrap().unwrap();
            ffs.write_file_blocks(&mut f, vec![(0, data_block(2))]).await.unwrap();
            let a2 = ffs.map_block(&f, 0).await.unwrap().unwrap();
            assert_eq!(a1, a2, "FFS overwrites in place");
            let p = ffs.read_file_block(&f, 0).await.unwrap().unwrap();
            assert_eq!(p.bytes().unwrap()[0], 2);
        });
    }

    #[test]
    fn sequential_blocks_are_contiguous() {
        run_ffs(|_h, mut ffs| async move {
            ffs.format().await.unwrap();
            let mut f = ffs.alloc_ino(FileKind::Regular, 0).unwrap();
            f.size = 4 * BLOCK_SIZE as u64;
            ffs.write_file_blocks(&mut f, (0..4).map(|b| (b, data_block(1))).collect())
                .await
                .unwrap();
            let a0 = ffs.map_block(&f, 0).await.unwrap().unwrap();
            let a3 = ffs.map_block(&f, 3).await.unwrap().unwrap();
            assert_eq!(a3.0, a0.0 + 3, "cluster allocation keeps blocks adjacent");
        });
    }

    #[test]
    fn remount_preserves_files() {
        let sim = Sim::new(29);
        let h = sim.handle();
        let driver = sim_disk_driver(&h, "d0", Box::new(Hp97560::new()), Box::new(CLook));
        let shutdown_driver = driver.clone();
        let done = std::rc::Rc::new(std::cell::Cell::new(false));
        let done2 = done.clone();
        let h2 = h.clone();
        h.spawn("test", async move {
            let mut ffs = FfsLayout::new(&h2, driver.clone(), FfsParams::default());
            ffs.format().await.unwrap();
            let mut f = ffs.alloc_ino(FileKind::Regular, 0).unwrap();
            f.size = 14 * BLOCK_SIZE as u64; // Spans into the indirect range.
            ffs.write_file_blocks(&mut f, (0..14).map(|b| (b, data_block(b as u8))).collect())
                .await
                .unwrap();
            let ino = f.ino;
            ffs.unmount().await.unwrap();
            let mut ffs2 = FfsLayout::new(&h2, driver, FfsParams::default());
            ffs2.mount().await.unwrap();
            let got = ffs2.get_inode(ino).await.unwrap();
            assert_eq!(got.size, 14 * BLOCK_SIZE as u64);
            let p = ffs2.read_file_block(&got, 13).await.unwrap().unwrap();
            assert_eq!(p.bytes().unwrap()[0], 13);
            done2.set(true);
            shutdown_driver.shutdown();
        });
        sim.run_until(SimTime::from_nanos(u64::MAX / 2));
        assert!(done.get(), "test body did not complete");
    }

    #[test]
    fn free_inode_recycles_blocks() {
        run_ffs(|_h, mut ffs| async move {
            ffs.format().await.unwrap();
            let mut f = ffs.alloc_ino(FileKind::Regular, 0).unwrap();
            f.size = 2 * BLOCK_SIZE as u64;
            ffs.write_file_blocks(&mut f, vec![(0, data_block(1)), (1, data_block(2))])
                .await
                .unwrap();
            let a0 = ffs.map_block(&f, 0).await.unwrap().unwrap();
            ffs.free_inode(f.ino).await.unwrap();
            assert!(ffs.get_inode(f.ino).await.is_err());
            // The freed block is allocatable again.
            let got = ffs.alloc_block(a0.0).unwrap();
            assert_eq!(got, a0);
        });
    }

    #[test]
    fn recover_rebuilds_stale_bitmaps() {
        let sim = Sim::new(43);
        let h = sim.handle();
        let driver = sim_disk_driver(&h, "d0", Box::new(Hp97560::new()), Box::new(CLook));
        let shutdown_driver = driver.clone();
        let done = std::rc::Rc::new(std::cell::Cell::new(false));
        let done2 = done.clone();
        let h2 = h.clone();
        h.spawn("test", async move {
            let params = FfsParams { ninodes: 1024, ngroups: 4 };
            let mut ffs = FfsLayout::new(&h2, driver.clone(), params.clone());
            ffs.format().await.unwrap();
            // Crash with bitmaps never synced: the inode table is the
            // only durable record of this file.
            let mut f = ffs.alloc_ino(FileKind::Regular, 0).unwrap();
            f.size = 3 * BLOCK_SIZE as u64;
            ffs.write_file_blocks(
                &mut f,
                vec![(0, data_block(5)), (1, data_block(6)), (2, data_block(7))],
            )
            .await
            .unwrap();
            let ino = f.ino;
            let a0 = ffs.map_block(&f, 0).await.unwrap().unwrap();
            drop(ffs);
            let mut rec = FfsLayout::new(&h2, driver.clone(), params);
            let stats = rec.recover().await.unwrap();
            assert!(stats.recovered_inodes >= 2, "root + file: {}", stats.recovered_inodes);
            let got = rec.get_inode(ino).await.expect("inode survives via table scan");
            assert_eq!(got.size, 3 * BLOCK_SIZE as u64);
            // The rebuilt block bitmap protects the file's blocks.
            let fresh = rec.alloc_block(a0.0).unwrap();
            assert_ne!(fresh, a0, "recovered allocation must not reuse live blocks");
            done2.set(true);
            shutdown_driver.shutdown();
        });
        sim.run_until(SimTime::from_nanos(u64::MAX / 2));
        assert!(done.get(), "test body did not complete");
    }

    #[test]
    fn freed_inode_stays_dead_across_recovery() {
        let sim = Sim::new(47);
        let h = sim.handle();
        let driver = sim_disk_driver(&h, "d0", Box::new(Hp97560::new()), Box::new(CLook));
        let shutdown_driver = driver.clone();
        let done = std::rc::Rc::new(std::cell::Cell::new(false));
        let done2 = done.clone();
        let h2 = h.clone();
        h.spawn("test", async move {
            let params = FfsParams { ninodes: 1024, ngroups: 4 };
            let mut ffs = FfsLayout::new(&h2, driver.clone(), params.clone());
            ffs.format().await.unwrap();
            let mut f = ffs.alloc_ino(FileKind::Regular, 0).unwrap();
            f.size = BLOCK_SIZE as u64;
            ffs.write_file_blocks(&mut f, vec![(0, data_block(1))]).await.unwrap();
            ffs.sync().await.unwrap();
            // Delete after the sync, then crash before the next sync: the
            // tombstoned inode-table slot must keep the file dead.
            ffs.free_inode(f.ino).await.unwrap();
            let ino = f.ino;
            drop(ffs);
            let mut rec = FfsLayout::new(&h2, driver.clone(), params);
            rec.recover().await.unwrap();
            assert!(
                rec.get_inode(ino).await.is_err(),
                "tombstone must prevent resurrection of the deleted file"
            );
            done2.set(true);
            shutdown_driver.shutdown();
        });
        sim.run_until(SimTime::from_nanos(u64::MAX / 2));
        assert!(done.get(), "test body did not complete");
    }

    #[test]
    fn truncate_frees_blocks() {
        run_ffs(|_h, mut ffs| async move {
            ffs.format().await.unwrap();
            let mut f = ffs.alloc_ino(FileKind::Regular, 0).unwrap();
            f.size = 16 * BLOCK_SIZE as u64;
            ffs.write_file_blocks(&mut f, (0..16).map(|b| (b, data_block(3))).collect())
                .await
                .unwrap();
            ffs.truncate(&mut f, 1).await.unwrap();
            assert_eq!(f.size, BLOCK_SIZE as u64);
            assert!(ffs.read_file_block(&f, 1).await.unwrap().is_none());
            assert!(!f.indirect.is_some());
        });
    }
}
